package sqldb

import (
	"errors"
	"testing"
)

// mustSession returns a session on a fresh database pre-loaded with the
// paper's urldb table (Appendix A schema) and a small products table.
func mustSession(t *testing.T) *Session {
	t.Helper()
	db := NewDatabase("CELDIAL")
	s := NewSession(db)
	script := `
CREATE TABLE urldb (
  url VARCHAR(255) NOT NULL PRIMARY KEY,
  title VARCHAR(255),
  description VARCHAR(1024)
);
INSERT INTO urldb VALUES
  ('http://www.ibm.com', 'IBM Corporation', 'IBM home page'),
  ('http://www.ibm.com/db2', 'DB2 Product Family', 'DB2 database products'),
  ('http://www.ncsa.uiuc.edu', 'NCSA', 'Common Gateway Interface home'),
  ('http://www.eso.org', 'European Southern Observatory', 'WDB gateway'),
  ('http://www.oracle.com', 'Oracle Inc', NULL);
CREATE TABLE products (
  custid INTEGER,
  product_name VARCHAR(64),
  price DOUBLE,
  qty INTEGER
);
INSERT INTO products VALUES
  (10100, 'bikes mountain', 329.99, 3),
  (10100, 'bikes road', 899.0, 1),
  (10200, 'helmets', 45.5, 10),
  (10300, 'bikes kids', 120.0, 2),
  (10300, 'locks', 15.25, 7);
`
	if _, err := s.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	return s
}

func mustExec(t *testing.T, s *Session, sql string, params ...Value) *Result {
	t.Helper()
	res, err := s.Exec(sql, params...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func rowsAsStrings(res *Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, r := range res.Rows {
		row := make([]string, len(r))
		for j, v := range r {
			row[j] = v.String()
		}
		out[i] = row
	}
	return out
}

func TestSelectStar(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT * FROM urldb")
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	want := []string{"url", "title", "description"}
	for i, c := range res.Columns {
		if c != want[i] {
			t.Errorf("column %d = %q, want %q", i, c, want[i])
		}
	}
}

func TestSelectWhereLike(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT url FROM urldb WHERE url LIKE '%ibm%'")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(res.Rows), rowsAsStrings(res))
	}
}

func TestSelectWherePaperExample(t *testing.T) {
	// The exact statement shape built by the Section 3.1.3 macro.
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT product_name FROM products WHERE custid = 10100 AND product_name LIKE 'bikes%'")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
}

func TestOrderBy(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT title FROM urldb ORDER BY title")
	got := rowsAsStrings(res)
	want := []string{"DB2 Product Family", "European Southern Observatory",
		"IBM Corporation", "NCSA", "Oracle Inc"}
	for i, w := range want {
		if got[i][0] != w {
			t.Errorf("row %d = %q, want %q", i, got[i][0], w)
		}
	}
}

func TestOrderByDescAndOrdinal(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT custid, price FROM products ORDER BY 2 DESC")
	if res.Rows[0][1].F != 899.0 {
		t.Fatalf("first price = %v, want 899", res.Rows[0][1])
	}
}

func TestOrderByAlias(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT price * qty AS total FROM products ORDER BY total DESC")
	f, _ := res.Rows[0][0].AsFloat()
	if f != 989.97 {
		t.Fatalf("top total = %v, want 989.97", f)
	}
}

func TestAggregates(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT custid, COUNT(*), SUM(qty), MIN(price), MAX(price) FROM products GROUP BY custid ORDER BY custid")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d groups, want 3", len(res.Rows))
	}
	r0 := res.Rows[0]
	if r0[0].I != 10100 || r0[1].I != 2 || r0[2].I != 4 {
		t.Errorf("group 10100 = %v", rowsAsStrings(res)[0])
	}
	if r0[3].F != 329.99 || r0[4].F != 899.0 {
		t.Errorf("min/max wrong: %v", rowsAsStrings(res)[0])
	}
}

func TestAggregateOverEmptySet(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT COUNT(*), SUM(qty) FROM products WHERE custid = 99999")
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows, want 1", len(res.Rows))
	}
	if res.Rows[0][0].I != 0 {
		t.Errorf("COUNT(*) = %v, want 0", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() {
		t.Errorf("SUM over empty set = %v, want NULL", res.Rows[0][1])
	}
}

func TestHaving(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT custid FROM products GROUP BY custid HAVING COUNT(*) > 1 ORDER BY custid")
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(res.Rows))
	}
	if res.Rows[0][0].I != 10100 || res.Rows[1][0].I != 10300 {
		t.Errorf("groups = %v", rowsAsStrings(res))
	}
}

func TestCountDistinct(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT COUNT(DISTINCT custid) FROM products")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("COUNT(DISTINCT) = %v, want 3", res.Rows[0][0])
	}
}

func TestDistinct(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT DISTINCT custid FROM products ORDER BY custid")
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
}

func TestJoin(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE customers (custid INTEGER PRIMARY KEY, name VARCHAR(64))")
	mustExec(t, s, `INSERT INTO customers VALUES (10100, 'Acme'), (10200, 'Globex'), (10400, 'Initech')`)
	res := mustExec(t, s, `
SELECT c.name, p.product_name
FROM customers c JOIN products p ON c.custid = p.custid
ORDER BY c.name, p.product_name`)
	if len(res.Rows) != 3 {
		t.Fatalf("inner join rows = %d, want 3: %v", len(res.Rows), rowsAsStrings(res))
	}
	left := mustExec(t, s, `
SELECT c.name, p.product_name
FROM customers c LEFT JOIN products p ON c.custid = p.custid
ORDER BY c.name`)
	if len(left.Rows) != 4 {
		t.Fatalf("left join rows = %d, want 4", len(left.Rows))
	}
	// Initech has no products: padded with NULL.
	last := left.Rows[len(left.Rows)-1]
	if last[0].S != "Initech" || !last[1].IsNull() {
		t.Errorf("left-join pad = %v", last)
	}
}

func TestCommaJoin(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT COUNT(*) FROM urldb, products")
	if res.Rows[0][0].I != 25 {
		t.Fatalf("cross product = %v, want 25", res.Rows[0][0])
	}
}

func TestUpdateAndDelete(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "UPDATE products SET qty = qty + 1 WHERE custid = 10100")
	if res.RowsAffected != 2 {
		t.Fatalf("updated %d, want 2", res.RowsAffected)
	}
	check := mustExec(t, s, "SELECT SUM(qty) FROM products WHERE custid = 10100")
	if check.Rows[0][0].I != 6 {
		t.Errorf("after update sum = %v, want 6", check.Rows[0][0])
	}
	del := mustExec(t, s, "DELETE FROM products WHERE custid = 10300")
	if del.RowsAffected != 2 {
		t.Fatalf("deleted %d, want 2", del.RowsAffected)
	}
	left := mustExec(t, s, "SELECT COUNT(*) FROM products")
	if left.Rows[0][0].I != 3 {
		t.Errorf("remaining = %v, want 3", left.Rows[0][0])
	}
}

func TestNullSemantics(t *testing.T) {
	s := mustSession(t)
	// NULL never equals anything.
	res := mustExec(t, s, "SELECT url FROM urldb WHERE description = description")
	if len(res.Rows) != 4 {
		t.Fatalf("self-equality rows = %d, want 4 (NULL row excluded)", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT url FROM urldb WHERE description IS NULL")
	if len(res.Rows) != 1 {
		t.Fatalf("IS NULL rows = %d, want 1", len(res.Rows))
	}
	res = mustExec(t, s, "SELECT url FROM urldb WHERE description IS NOT NULL")
	if len(res.Rows) != 4 {
		t.Fatalf("IS NOT NULL rows = %d, want 4", len(res.Rows))
	}
}

func TestInBetween(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT COUNT(*) FROM products WHERE custid IN (10100, 10300)")
	if res.Rows[0][0].I != 4 {
		t.Fatalf("IN count = %v, want 4", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM products WHERE price BETWEEN 40 AND 400")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("BETWEEN count = %v, want 3", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM products WHERE custid NOT IN (10100)")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("NOT IN count = %v, want 3", res.Rows[0][0])
	}
}

func TestParams(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT title FROM urldb WHERE url = ?",
		NewString("http://www.ibm.com"))
	if len(res.Rows) != 1 || res.Rows[0][0].S != "IBM Corporation" {
		t.Fatalf("param query = %v", rowsAsStrings(res))
	}
}

func TestUniqueViolation(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("INSERT INTO urldb VALUES ('http://www.ibm.com', 'dup', 'dup')")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUniqueViolation {
		t.Fatalf("err = %v, want unique violation", err)
	}
}

func TestNotNullViolation(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("INSERT INTO urldb (title) VALUES ('no url')")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeNotNullViolation {
		t.Fatalf("err = %v, want not-null violation", err)
	}
}

func TestUndefinedTableAndColumn(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELECT * FROM nosuch")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUndefinedTable {
		t.Fatalf("err = %v, want undefined table", err)
	}
	_, err = s.Exec("SELECT nosuch FROM urldb")
	if !errors.As(err, &e) || e.Code != CodeUndefinedColumn {
		t.Fatalf("err = %v, want undefined column", err)
	}
}

func TestSyntaxError(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELEC * FROM urldb")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeSyntax {
		t.Fatalf("err = %v, want syntax error", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELECT 1/0")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeDivisionByZero {
		t.Fatalf("err = %v, want division by zero", err)
	}
}

func TestTransactionRollback(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO products VALUES (10500, 'tents', 99.0, 1)")
	mustExec(t, s, "UPDATE products SET price = 0 WHERE custid = 10100")
	mustExec(t, s, "DELETE FROM products WHERE custid = 10200")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT COUNT(*) FROM products")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("rows after rollback = %v, want 5", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT SUM(price) FROM products WHERE custid = 10100")
	f, _ := res.Rows[0][0].AsFloat()
	if f != 1228.99 {
		t.Errorf("prices restored = %v, want 1228.99", f)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM products WHERE custid = 10200")
	if res.Rows[0][0].I != 1 {
		t.Errorf("deleted row not restored")
	}
}

func TestTransactionCommit(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "INSERT INTO products VALUES (10500, 'tents', 99.0, 1)")
	mustExec(t, s, "COMMIT")
	res := mustExec(t, s, "SELECT COUNT(*) FROM products")
	if res.Rows[0][0].I != 6 {
		t.Fatalf("rows after commit = %v, want 6", res.Rows[0][0])
	}
}

func TestTransactionDDLRollback(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "CREATE TABLE scratch (a INTEGER)")
	mustExec(t, s, "INSERT INTO scratch VALUES (1)")
	mustExec(t, s, "DROP TABLE urldb")
	mustExec(t, s, "ROLLBACK")
	if _, err := s.Exec("SELECT * FROM scratch"); err == nil {
		t.Error("scratch table survived rollback")
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM urldb")
	if res.Rows[0][0].I != 5 {
		t.Errorf("urldb not restored: %v", res.Rows[0][0])
	}
	// Index on url must still work after restore.
	res = mustExec(t, s, "SELECT title FROM urldb WHERE url = 'http://www.eso.org'")
	if len(res.Rows) != 1 {
		t.Errorf("index lookup after rollback failed")
	}
}

func TestDoubleBeginFails(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	_, err := s.Exec("BEGIN")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeInvalidTxnState {
		t.Fatalf("err = %v, want invalid txn state", err)
	}
	mustExec(t, s, "ROLLBACK")
}

func TestSessionCloseRollsBack(t *testing.T) {
	db := NewDatabase("test")
	s1 := NewSession(db)
	if _, err := s1.ExecScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(db)
	mustExec(t, s2, "BEGIN")
	mustExec(t, s2, "INSERT INTO t VALUES (2)")
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := NewSession(db)
	res := mustExec(t, s3, "SELECT COUNT(*) FROM t")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("count = %v, want 1 (insert rolled back on close)", res.Rows[0][0])
	}
}

func TestScalarFunctions(t *testing.T) {
	s := mustSession(t)
	cases := []struct {
		sql  string
		want string
	}{
		{"SELECT UPPER('abc')", "ABC"},
		{"SELECT LOWER('AbC')", "abc"},
		{"SELECT LENGTH('hello')", "5"},
		{"SELECT SUBSTR('hello world', 7)", "world"},
		{"SELECT SUBSTR('hello world', 1, 5)", "hello"},
		{"SELECT TRIM('  x  ')", "x"},
		{"SELECT REPLACE('a-b-c', '-', '+')", "a+b+c"},
		{"SELECT CONCAT('a', 'b', 'c')", "abc"},
		{"SELECT 'a' || 'b'", "ab"},
		{"SELECT COALESCE(NULL, NULL, 'x')", "x"},
		{"SELECT NULLIF('a', 'a')", ""},
		{"SELECT ABS(-7)", "7"},
		{"SELECT MOD(7, 3)", "1"},
		{"SELECT ROUND(3.14159, 2)", "3.14"},
		{"SELECT FLOOR(3.9)", "3"},
		{"SELECT CEIL(3.1)", "4"},
		{"SELECT LEFT('hello', 2)", "he"},
		{"SELECT RIGHT('hello', 2)", "lo"},
		{"SELECT LOCATE('ll', 'hello')", "3"},
		{"SELECT REPEAT('ab', 3)", "ababab"},
		{"SELECT CAST('42' AS INTEGER)", "42"},
		{"SELECT CAST(42 AS VARCHAR(10))", "42"},
		{"SELECT CASE WHEN 1 < 2 THEN 'yes' ELSE 'no' END", "yes"},
		{"SELECT CASE 2 WHEN 1 THEN 'one' WHEN 2 THEN 'two' END", "two"},
	}
	for _, c := range cases {
		res := mustExec(t, s, c.sql)
		if got := res.Rows[0][0].String(); got != c.want {
			t.Errorf("%s = %q, want %q", c.sql, got, c.want)
		}
	}
}

func TestLikePatterns(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"bikes mountain", "bikes%", true},
		{"bikes", "bikes%", true},
		{"xbikes", "bikes%", false},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // _,_ match e,l; then "lo" anchors at end
		{"hello", "h_llo_", false},
		{"hi", "h__", false},
		{"hello", "%llo", true},
		{"hello", "%ell%", true},
		{"hello", "%", true},
		{"", "%", true},
		{"", "_", false},
		{"abc", "abc", true},
		{"abc", "ABC", false},
		{"100%", "100!%", false}, // literal match without escape: '!' is literal
		{"a%b", "a\\%b", false},  // without ESCAPE, backslash is literal
		{"naïve", "na_ve", true}, // '_' matches one rune, not one byte
	}
	for _, c := range cases {
		got, err := likeMatch(c.s, c.pat, 0, false)
		if err != nil {
			t.Fatalf("likeMatch(%q, %q): %v", c.s, c.pat, err)
		}
		if got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	// With ESCAPE.
	got, err := likeMatch("100%", "100!%", '!', true)
	if err != nil || !got {
		t.Errorf("escaped %% should match literally: %v %v", got, err)
	}
	got, _ = likeMatch("100x", "100!%", '!', true)
	if got {
		t.Error("escaped %% must not act as wildcard")
	}
}

func TestLikeEscapeSQL(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE disc (code VARCHAR(10))")
	mustExec(t, s, "INSERT INTO disc VALUES ('10%'), ('10x'), ('100')")
	res := mustExec(t, s, "SELECT COUNT(*) FROM disc WHERE code LIKE '10!%' ESCAPE '!'")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("escape LIKE = %v, want 1", res.Rows[0][0])
	}
}

func TestIndexEquality(t *testing.T) {
	s := mustSession(t)
	// urldb has a primary-key index on url.
	res := mustExec(t, s, "SELECT title FROM urldb WHERE url = 'http://www.ncsa.uiuc.edu'")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "NCSA" {
		t.Fatalf("pk lookup = %v", rowsAsStrings(res))
	}
}

func TestIndexPrefixLike(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT COUNT(*) FROM urldb WHERE url LIKE 'http://www.ibm%'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("prefix LIKE via index = %v, want 2", res.Rows[0][0])
	}
	// Same result with index scans disabled.
	s.db.SetIndexScansEnabled(false)
	defer s.db.SetIndexScansEnabled(true)
	res = mustExec(t, s, "SELECT COUNT(*) FROM urldb WHERE url LIKE 'http://www.ibm%'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("prefix LIKE full scan = %v, want 2", res.Rows[0][0])
	}
}

func TestIndexRange(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE INDEX price_ix ON products (price)")
	res := mustExec(t, s, "SELECT COUNT(*) FROM products WHERE price > 100")
	if res.Rows[0][0].I != 3 {
		t.Fatalf("range via index = %v, want 3", res.Rows[0][0])
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM products WHERE price <= 45.5")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("range via index = %v, want 2", res.Rows[0][0])
	}
}

func TestCreateIndexDuplicateKeyFails(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("CREATE UNIQUE INDEX cid ON products (custid)")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeUniqueViolation {
		t.Fatalf("err = %v, want unique violation", err)
	}
}

func TestDropIndex(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE INDEX price_ix ON products (price)")
	mustExec(t, s, "DROP INDEX price_ix")
	if _, err := s.Exec("DROP INDEX price_ix"); err == nil {
		t.Fatal("second drop should fail")
	}
	mustExec(t, s, "DROP INDEX IF EXISTS price_ix")
}

func TestLimitOffset(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT title FROM urldb ORDER BY title LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "DB2 Product Family" {
		t.Fatalf("limit = %v", rowsAsStrings(res))
	}
	res = mustExec(t, s, "SELECT title FROM urldb ORDER BY title LIMIT 2 OFFSET 2")
	if len(res.Rows) != 2 || res.Rows[0][0].S != "IBM Corporation" {
		t.Fatalf("offset = %v", rowsAsStrings(res))
	}
	res = mustExec(t, s, "SELECT title FROM urldb ORDER BY title FETCH FIRST 3 ROWS ONLY")
	if len(res.Rows) != 3 {
		t.Fatalf("fetch first = %d rows", len(res.Rows))
	}
}

func TestRowsCursor(t *testing.T) {
	s := mustSession(t)
	rows, err := s.Query("SELECT url, title FROM urldb ORDER BY url")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	if got := rows.Columns(); len(got) != 2 || got[0] != "url" {
		t.Fatalf("columns = %v", got)
	}
	n := 0
	for rows.Next() {
		if len(rows.Row()) != 2 {
			t.Fatalf("row width = %d", len(rows.Row()))
		}
		n++
	}
	if n != 5 || rows.RowCount() != 5 {
		t.Fatalf("iterated %d rows, count %d, want 5", n, rows.RowCount())
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT 1 + 2, 'x' || 'y'")
	if res.Rows[0][0].I != 3 || res.Rows[0][1].S != "xy" {
		t.Fatalf("computed row = %v", rowsAsStrings(res))
	}
}

func TestDefaultValues(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE d (a INTEGER DEFAULT 7, b VARCHAR(10) DEFAULT 'hi', c INTEGER)")
	mustExec(t, s, "INSERT INTO d (c) VALUES (1)")
	res := mustExec(t, s, "SELECT a, b, c FROM d")
	if res.Rows[0][0].I != 7 || res.Rows[0][1].S != "hi" || res.Rows[0][2].I != 1 {
		t.Fatalf("defaults = %v", rowsAsStrings(res))
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	s := mustSession(t)
	// Dynamic SQL passes numbers as strings routinely.
	mustExec(t, s, "INSERT INTO products VALUES ('10600', 'rope', '9.99', '4')")
	res := mustExec(t, s, "SELECT custid, price, qty FROM products WHERE product_name = 'rope'")
	if res.Rows[0][0].I != 10600 {
		t.Errorf("custid coerced = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].F != 9.99 {
		t.Errorf("price coerced = %v", res.Rows[0][1])
	}
}

func TestStringNumberComparison(t *testing.T) {
	s := mustSession(t)
	// WHERE custid = '10100' — quoting numbers is ubiquitous in macro SQL.
	res := mustExec(t, s, "SELECT COUNT(*) FROM products WHERE custid = '10100'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("string/number compare = %v, want 2", res.Rows[0][0])
	}
}

func TestAmbiguousColumn(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE a1 (x INTEGER)")
	mustExec(t, s, "CREATE TABLE a2 (x INTEGER)")
	_, err := s.Exec("SELECT x FROM a1, a2")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeAmbiguousColumn {
		t.Fatalf("err = %v, want ambiguous column", err)
	}
}

func TestMultiRowInsert(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "INSERT INTO products VALUES (1,'a',1.0,1), (2,'b',2.0,2), (3,'c',3.0,3)")
	if res.RowsAffected != 3 {
		t.Fatalf("inserted %d, want 3", res.RowsAffected)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll("SELECT 1; SELECT 2;; SELECT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("parsed %d statements, want 3", len(stmts))
	}
}

func TestComments(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `SELECT COUNT(*) -- trailing comment
FROM products /* block
comment */ WHERE custid = 10100`)
	if res.Rows[0][0].I != 2 {
		t.Fatalf("with comments = %v", res.Rows[0][0])
	}
}

func TestQuotedIdentifier(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, `CREATE TABLE q ("desc" VARCHAR(10), "select" INTEGER)`)
	mustExec(t, s, `INSERT INTO q VALUES ('d', 1)`)
	res := mustExec(t, s, `SELECT "desc", "select" FROM q`)
	if res.Rows[0][0].S != "d" || res.Rows[0][1].I != 1 {
		t.Fatalf("quoted idents = %v", rowsAsStrings(res))
	}
}

func TestCaseInsensitiveKeywordsAndColumns(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "select Title from URLDB where URL like '%eso%'")
	if len(res.Rows) != 1 {
		t.Fatalf("case-insensitive query = %v", rowsAsStrings(res))
	}
}

func TestUpdateRollbackRestoresIndex(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "UPDATE urldb SET url = 'http://changed' WHERE url = 'http://www.eso.org'")
	mustExec(t, s, "ROLLBACK")
	res := mustExec(t, s, "SELECT title FROM urldb WHERE url = 'http://www.eso.org'")
	if len(res.Rows) != 1 {
		t.Fatal("index entry not restored after update rollback")
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM urldb WHERE url = 'http://changed'")
	if res.Rows[0][0].I != 0 {
		t.Fatal("stale index entry after rollback")
	}
}
