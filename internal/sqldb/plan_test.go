package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// planSeed builds the two-table corpus schema used by the plan-cache
// equivalence tests, identically on any database.
func planSeed(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, "CREATE TABLE dept (id INTEGER PRIMARY KEY, dname VARCHAR(40), loc VARCHAR(40))")
	mustExec(t, s, "CREATE TABLE emp (id INTEGER PRIMARY KEY, name VARCHAR(40), dept INTEGER, salary DOUBLE)")
	mustExec(t, s, "CREATE INDEX emp_dept ON emp (dept)")
	locs := []string{"east", "west", "north", "south", "hq"}
	for d := 1; d <= 5; d++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO dept VALUES (%d, 'dept%d', '%s')", d, d, locs[d-1]))
	}
	for i := 1; i <= 30; i++ {
		mustExec(t, s, fmt.Sprintf("INSERT INTO emp VALUES (%d, 'n%02d', %d, %d.5)",
			i, i, i%5+1, 1000+i*37))
	}
}

// resultBytes serializes a result exactly: column names, every value in
// SQL rendering, and the affected-row count.
func resultBytes(res *Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ","))
	sb.WriteString(fmt.Sprintf("|affected=%d", res.RowsAffected))
	for _, r := range res.Rows {
		sb.WriteByte('\n')
		for i, v := range r {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(valueSQL(v))
		}
	}
	return sb.String()
}

// planCorpus holds literal-bearing statements spanning the paramizable
// surface: point lookups, index and LIKE predicates, multi-table joins
// (comma and JOIN syntax), grouping, IN lists, subqueries, ordinals, and
// DML. Multi-row results carry ORDER BY so row order is pinned.
var planCorpus = []string{
	"SELECT name, salary FROM emp WHERE id = 7",
	"SELECT name FROM emp WHERE salary > 1500 AND dept = 2 ORDER BY name",
	"SELECT name FROM emp WHERE name LIKE 'n1%' ORDER BY 1",
	"SELECT name FROM emp WHERE dept IN (1, 2) ORDER BY name DESC",
	"SELECT e.name, d.dname FROM emp e, dept d WHERE e.dept = d.id AND d.loc = 'west' ORDER BY e.name",
	"SELECT * FROM emp e JOIN dept d ON e.dept = d.id WHERE d.id = 3 ORDER BY e.id",
	"SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept ORDER BY dept",
	"SELECT name FROM emp WHERE salary = (SELECT MAX(salary) FROM emp)",
	"SELECT dname FROM dept WHERE id < 4 ORDER BY dname LIMIT 2 OFFSET 1",
	"UPDATE emp SET salary = 9999.25 WHERE id = 3",
	"UPDATE emp SET salary = 8888.25 WHERE id = 4",
	"INSERT INTO emp VALUES (100, 'zz', 1, 5.5)",
	"DELETE FROM emp WHERE id = 11",
	"SELECT * FROM emp ORDER BY id",
}

// TestPlanCacheByteIdentical is the equivalence property: every corpus
// statement run through the plan cache and cost-based planner returns
// exactly the bytes of the literal path with both features off — on the
// cold (parse) pass and the warm (cache hit) pass alike.
func TestPlanCacheByteIdentical(t *testing.T) {
	dbOn := NewDatabase("on")
	dbOff := NewDatabase("off")
	dbOff.SetPlanCacheEnabled(false)
	dbOff.SetPlannerEnabled(false)
	sOn, sOff := NewSession(dbOn), NewSession(dbOff)
	planSeed(t, sOn)
	planSeed(t, sOff)

	for _, q := range planCorpus {
		off, offErr := sOff.Exec(q)
		on, onErr := sOn.Exec(q)
		if (offErr == nil) != (onErr == nil) {
			t.Fatalf("%s: literal err=%v cached err=%v", q, offErr, onErr)
		}
		if offErr != nil {
			continue
		}
		if got, want := resultBytes(on), resultBytes(off); got != want {
			t.Fatalf("%s: cold cached result differs\ncached: %s\nliteral: %s", q, got, want)
		}
	}
	// Second pass: SELECTs hit the cache and must still match a literal
	// re-run (DML is not idempotent, so only re-run reads).
	hitsBefore := dbOn.PlanCacheStats().Hits
	for _, q := range planCorpus {
		if !strings.HasPrefix(q, "SELECT") {
			continue
		}
		off := mustExec(t, sOff, q)
		on := mustExec(t, sOn, q)
		if got, want := resultBytes(on), resultBytes(off); got != want {
			t.Fatalf("%s: warm cached result differs\ncached: %s\nliteral: %s", q, got, want)
		}
	}
	st := dbOn.PlanCacheStats()
	if st.Hits == hitsBefore {
		t.Fatalf("second pass recorded no cache hits: %+v", st)
	}
	if off := dbOff.PlanCacheStats(); off.Hits != 0 || off.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", off)
	}
}

// TestPlanCacheHitSkipsParse: repeated shapes are served from cache (one
// miss, then hits), and distinct literals of the same shape share one
// entry.
func TestPlanCacheHitSkipsParse(t *testing.T) {
	db := NewDatabase("t")
	s := NewSession(db)
	planSeed(t, s)
	base := db.PlanCacheStats()
	for i := 1; i <= 10; i++ {
		res := mustExec(t, s, fmt.Sprintf("SELECT name FROM emp WHERE id = %d", i))
		if len(res.Rows) != 1 {
			t.Fatalf("id=%d returned %d rows", i, len(res.Rows))
		}
	}
	st := db.PlanCacheStats()
	if st.Misses-base.Misses != 1 {
		t.Fatalf("want exactly 1 miss for 10 same-shape queries, got %d", st.Misses-base.Misses)
	}
	if st.Hits-base.Hits != 9 {
		t.Fatalf("want 9 hits, got %d", st.Hits-base.Hits)
	}
	digest, _ := DigestSQL("SELECT name FROM emp WHERE id = 1")
	if !db.plans.contains(digest) {
		t.Fatalf("digest %s not cached", digest)
	}
}

// TestPlanCacheExplicitParamsBypass: calls that already carry bind
// parameters skip the cache entirely.
func TestPlanCacheExplicitParamsBypass(t *testing.T) {
	db := NewDatabase("t")
	s := NewSession(db)
	planSeed(t, s)
	base := db.PlanCacheStats()
	res := mustExec(t, s, "SELECT name FROM emp WHERE id = ?", NewInt(5))
	if len(res.Rows) != 1 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	st := db.PlanCacheStats()
	if st.Hits != base.Hits || st.Misses != base.Misses {
		t.Fatalf("parameterized call touched the cache: %+v -> %+v", base, st)
	}
}

// TestPlanCacheDDLInvalidation: DDL on a referenced table invalidates the
// cached shape (observable in the counters), and the statement re-plans
// correctly afterwards.
func TestPlanCacheDDLInvalidation(t *testing.T) {
	db := NewDatabase("t")
	s := NewSession(db)
	planSeed(t, s)
	q := "SELECT name FROM emp WHERE salary > 1800 ORDER BY name"
	mustExec(t, s, q) // miss, cached
	mustExec(t, s, q) // hit
	base := db.PlanCacheStats()

	mustExec(t, s, "CREATE INDEX emp_sal ON emp (salary)")
	res := mustExec(t, s, q)
	st := db.PlanCacheStats()
	if st.Invalidations-base.Invalidations != 1 {
		t.Fatalf("want 1 invalidation after CREATE INDEX, got %d", st.Invalidations-base.Invalidations)
	}
	if st.Misses-base.Misses != 1 {
		t.Fatalf("want a fresh miss after invalidation, got %d", st.Misses-base.Misses)
	}
	if len(res.Rows) == 0 {
		t.Fatal("re-planned query returned no rows")
	}
	mustExec(t, s, q) // re-cached: hit again
	if got := db.PlanCacheStats().Hits - st.Hits; got != 1 {
		t.Fatalf("want hit after re-cache, got %d", got)
	}

	// DDL on an unreferenced table leaves the entry alone.
	pre := db.PlanCacheStats()
	mustExec(t, s, "CREATE TABLE other (x INTEGER)")
	mustExec(t, s, q)
	post := db.PlanCacheStats()
	if post.Invalidations != pre.Invalidations {
		t.Fatalf("unrelated DDL invalidated the plan: %+v -> %+v", pre, post)
	}
	if post.Hits-pre.Hits != 1 {
		t.Fatalf("want hit across unrelated DDL, got %d", post.Hits-pre.Hits)
	}

	// A rolled-back DDL transaction bumps the schema epoch, invalidating
	// everything cached before it.
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "CREATE TABLE scratch (x INTEGER)")
	mustExec(t, s, "ROLLBACK")
	pre = db.PlanCacheStats()
	mustExec(t, s, q)
	post = db.PlanCacheStats()
	if post.Invalidations-pre.Invalidations != 1 {
		t.Fatalf("want epoch invalidation after rolled-back DDL, got %d",
			post.Invalidations-pre.Invalidations)
	}
}

// TestPlanCacheDropTable: dropping a table invalidates its cached shapes
// and the replayed statement fails exactly like a fresh parse would.
func TestPlanCacheDropTable(t *testing.T) {
	db := NewDatabase("t")
	s := NewSession(db)
	planSeed(t, s)
	q := "SELECT dname FROM dept WHERE id = 2"
	mustExec(t, s, q)
	mustExec(t, s, q)
	mustExec(t, s, "DROP TABLE dept")
	_, err := s.Exec(q)
	if err == nil {
		t.Fatal("query against dropped table succeeded")
	}
	db2 := NewDatabase("fresh")
	_, fresh := NewSession(db2).Exec(q)
	if fresh == nil || err.Error() != fresh.Error() {
		t.Fatalf("cached-path error %q != fresh error %q", err, fresh)
	}
}

// TestPlanCacheLRUEviction exercises the bounded-LRU unit behaviour
// directly: storing over capacity evicts the least recently used shape.
func TestPlanCacheLRUEviction(t *testing.T) {
	pc := NewPlanCache(2)
	mk := func(d string) *planEntry {
		return &planEntry{digest: d, norm: d, stmt: &SelectStmt{}}
	}
	pc.store(mk("a"))
	pc.store(mk("b"))
	if pc.lookup("a", "a", 0) == nil { // touch a: b becomes LRU
		t.Fatal("a missing before eviction")
	}
	pc.store(mk("c"))
	if pc.len() != 2 {
		t.Fatalf("len=%d want 2", pc.len())
	}
	if pc.lookup("b", "b", 0) != nil {
		t.Fatal("b survived eviction")
	}
	if pc.lookup("a", "a", 0) == nil || pc.lookup("c", "c", 0) == nil {
		t.Fatal("a or c evicted wrongly")
	}
	// A colliding digest with a different normalized shape is a miss, and
	// a negative entry never reports as a positive plan.
	if pc.lookup("a", "other-shape", 0) != nil {
		t.Fatal("collision guard failed")
	}
	pc.store(&planEntry{digest: "neg", norm: "neg"})
	if pc.contains("neg") {
		t.Fatal("negative entry reported as positive")
	}
}

// TestPlanCacheTextFastPath: a verbatim repeat is served from the
// exact-text map, staleness falls back to the token path exactly once,
// and the text map honours its own LRU bound.
func TestPlanCacheTextFastPath(t *testing.T) {
	db := NewDatabase("t")
	s := NewSession(db)
	planSeed(t, s)
	q := "SELECT name FROM emp WHERE id = 9"
	mustExec(t, s, q)
	if db.plans.lookupText(q) == nil {
		t.Fatal("text entry not stored after first execution")
	}
	base := db.PlanCacheStats()
	res := mustExec(t, s, q)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "n09" {
		t.Fatalf("text-path result wrong: %v", res.Rows)
	}
	st := db.PlanCacheStats()
	if st.Hits-base.Hits != 1 || st.Misses != base.Misses {
		t.Fatalf("verbatim repeat not a hit: %+v -> %+v", base, st)
	}
	// DDL staleness: the text entry's shape is invalidated, re-resolved
	// through the token path (one invalidation, one miss), and repaired.
	mustExec(t, s, "CREATE INDEX emp_name ON emp (name)")
	base = db.PlanCacheStats()
	mustExec(t, s, q)
	st = db.PlanCacheStats()
	if st.Invalidations-base.Invalidations != 1 || st.Misses-base.Misses != 1 {
		t.Fatalf("stale text entry not re-resolved: %+v -> %+v", base, st)
	}
	mustExec(t, s, q)
	if got := db.PlanCacheStats().Hits - st.Hits; got != 1 {
		t.Fatalf("repaired text entry not hit: %d", got)
	}
	// The text map is bounded at textCapFactor times the shape cap.
	pc := NewPlanCache(1)
	for i := 0; i < 3*textCapFactor; i++ {
		pc.storeText(fmt.Sprintf("q%d", i), "d", "n", nil)
	}
	if pc.tlru.Len() != textCapFactor {
		t.Fatalf("text LRU holds %d entries, want %d", pc.tlru.Len(), textCapFactor)
	}
}

// TestPlanCacheConcurrentDDL races cached-plan hits against repeated
// index DDL on the same table; run under -race this checks the
// invalidation path is safe against concurrent readers.
func TestPlanCacheConcurrentDDL(t *testing.T) {
	db := NewDatabase("t")
	setup := NewSession(db)
	planSeed(t, setup)
	const readers = 4
	var wg, ready sync.WaitGroup
	errc := make(chan error, readers+1)
	done := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		ready.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSession(db)
			first := true
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				id := i%30 + 1
				res, err := s.Exec(fmt.Sprintf("SELECT name FROM emp WHERE id = %d", id))
				if first {
					// The shape is cached now; let the DDL churn begin.
					first = false
					ready.Done()
				}
				if err != nil {
					errc <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if len(res.Rows) != 1 {
					errc <- fmt.Errorf("reader %d: id=%d got %d rows", g, id, len(res.Rows))
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(done)
		ready.Wait()
		s := NewSession(db)
		for i := 0; i < 50; i++ {
			if _, err := s.Exec("CREATE INDEX emp_stress ON emp (salary)"); err != nil {
				errc <- fmt.Errorf("ddl create: %v", err)
				return
			}
			if _, err := s.Exec("DROP INDEX emp_stress"); err != nil {
				errc <- fmt.Errorf("ddl drop: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Whatever entry survived the churn was cached before the final DROP
	// INDEX bumped the schema version, so one more lookup must observe the
	// staleness (unless a reader already did mid-churn).
	mustExec(t, setup, "SELECT name FROM emp WHERE id = 1")
	if st := db.PlanCacheStats(); st.Invalidations == 0 {
		t.Fatalf("stress run recorded no invalidations: %+v", st)
	}
}

// TestParamizeTokens pins the literal-extraction rules: strings and
// numbers extract, ORDER BY ordinals and type-suffix lengths stay
// literal, and pre-parameterized or non-DML statements bail out. In all
// extracted cases the normalized shape is unchanged — the cache key is
// shared with statement stats by construction.
func TestParamizeTokens(t *testing.T) {
	cases := []struct {
		sql   string
		ok    bool
		nvals int
	}{
		{"SELECT * FROM t WHERE id = 7 AND name = 'x'", true, 2},
		{"SELECT name FROM t ORDER BY 2", true, 0},
		{"SELECT name FROM t WHERE id = 3 ORDER BY 1 LIMIT 5", true, 2}, // 3 and 5; ordinal kept
		{"SELECT CAST(id AS VARCHAR(10)) FROM t WHERE id = 5", true, 1},
		{"INSERT INTO t VALUES (1, 'a', 2.5)", true, 3},
		{"SELECT * FROM t WHERE id = ?", false, 0},
		{"CREATE TABLE t (id INTEGER)", false, 0},
		{"EXPLAIN SELECT * FROM t WHERE id = 1", false, 0},
		{"SELECT * FROM (SELECT id FROM t ORDER BY 1) s WHERE id = 9", true, 1},
	}
	for _, c := range cases {
		toks, err := lexSQL(c.sql)
		if err != nil {
			t.Fatalf("%s: lex: %v", c.sql, err)
		}
		ptoks, vals, ok := paramizeTokens(toks)
		if ok != c.ok {
			t.Fatalf("%s: ok=%v want %v", c.sql, ok, c.ok)
		}
		if !ok {
			continue
		}
		if len(vals) != c.nvals {
			t.Fatalf("%s: extracted %d values, want %d (%v)", c.sql, len(vals), c.nvals, vals)
		}
		if got, want := normalizeTokens(ptoks), normalizeTokens(toks); got != want {
			t.Fatalf("%s: normalized shape changed\nparamized: %s\noriginal:  %s", c.sql, got, want)
		}
	}
}
