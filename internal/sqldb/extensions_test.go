package sqldb

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

// --- subqueries ---

func TestScalarSubquery(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT product_name FROM products WHERE price = (SELECT MAX(price) FROM products)")
	if len(res.Rows) != 1 || res.Rows[0][0].S != "bikes road" {
		t.Fatalf("rows = %v", rowsAsStrings(res))
	}
}

func TestScalarSubqueryInSelectList(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT (SELECT COUNT(*) FROM urldb), custid FROM products LIMIT 1")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("subquery value = %v", res.Rows[0][0])
	}
}

func TestScalarSubqueryCardinalityErrors(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELECT (SELECT custid FROM products)")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeCardinality {
		t.Fatalf("multi-row scalar subquery: err = %v", err)
	}
	_, err = s.Exec("SELECT (SELECT custid, qty FROM products WHERE custid = 10200)")
	if !errors.As(err, &e) || e.Code != CodeCardinality {
		t.Fatalf("multi-column scalar subquery: err = %v", err)
	}
}

func TestScalarSubqueryEmptyIsNull(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT (SELECT custid FROM products WHERE custid = 0)")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("empty scalar subquery = %v, want NULL", res.Rows[0][0])
	}
}

func TestInSubquery(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE vip (custid INTEGER)")
	mustExec(t, s, "INSERT INTO vip VALUES (10100), (10300)")
	res := mustExec(t, s,
		"SELECT COUNT(*) FROM products WHERE custid IN (SELECT custid FROM vip)")
	if res.Rows[0][0].I != 4 {
		t.Fatalf("IN subquery count = %v, want 4", res.Rows[0][0])
	}
	res = mustExec(t, s,
		"SELECT COUNT(*) FROM products WHERE custid NOT IN (SELECT custid FROM vip)")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("NOT IN subquery count = %v, want 1", res.Rows[0][0])
	}
}

func TestNotInSubqueryWithNullIsUnknown(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE TABLE maybe (custid INTEGER)")
	mustExec(t, s, "INSERT INTO maybe VALUES (10100), (NULL)")
	// NOT IN against a set containing NULL is never true.
	res := mustExec(t, s,
		"SELECT COUNT(*) FROM products WHERE custid NOT IN (SELECT custid FROM maybe)")
	if res.Rows[0][0].I != 0 {
		t.Fatalf("NOT IN with NULL = %v, want 0 (three-valued logic)", res.Rows[0][0])
	}
}

func TestExistsSubquery(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT COUNT(*) FROM urldb WHERE EXISTS (SELECT 1 FROM products)")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("EXISTS true = %v", res.Rows[0][0])
	}
	res = mustExec(t, s,
		"SELECT COUNT(*) FROM urldb WHERE NOT EXISTS (SELECT 1 FROM products WHERE custid = 0)")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("NOT EXISTS = %v", res.Rows[0][0])
	}
}

func TestSubqueryInUpdate(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s,
		"UPDATE products SET price = (SELECT MIN(price) FROM products) WHERE custid = 10200")
	res := mustExec(t, s, "SELECT price FROM products WHERE custid = 10200")
	if res.Rows[0][0].F != 15.25 {
		t.Fatalf("price = %v", res.Rows[0][0])
	}
}

// --- UNION ---

func TestUnionDedupes(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `
SELECT custid FROM products WHERE custid < 10300
UNION
SELECT custid FROM products
ORDER BY custid`)
	if len(res.Rows) != 3 {
		t.Fatalf("UNION rows = %d, want 3 distinct: %v", len(res.Rows), rowsAsStrings(res))
	}
	if res.Rows[0][0].I != 10100 || res.Rows[2][0].I != 10300 {
		t.Fatalf("order = %v", rowsAsStrings(res))
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s,
		"SELECT custid FROM products UNION ALL SELECT custid FROM products")
	if len(res.Rows) != 10 {
		t.Fatalf("UNION ALL rows = %d, want 10", len(res.Rows))
	}
}

func TestUnionOrderByOrdinalAndLimit(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `
SELECT product_name, price FROM products WHERE custid = 10100
UNION ALL
SELECT product_name, price FROM products WHERE custid = 10300
ORDER BY 2 DESC LIMIT 2`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][1].F != 899.0 {
		t.Fatalf("top price = %v", res.Rows[0][1])
	}
}

func TestUnionColumnCountMismatch(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELECT custid FROM products UNION SELECT custid, qty FROM products")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeCardinality {
		t.Fatalf("err = %v", err)
	}
}

func TestUnionOfLiterals(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT 1 UNION SELECT 2 UNION SELECT 1 ORDER BY 1")
	if len(res.Rows) != 2 || res.Rows[0][0].I != 1 || res.Rows[1][0].I != 2 {
		t.Fatalf("rows = %v", rowsAsStrings(res))
	}
}

// --- ALTER TABLE ---

func TestAlterTableAddColumn(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "ALTER TABLE products ADD COLUMN discount DOUBLE DEFAULT 0.1")
	res := mustExec(t, s, "SELECT discount FROM products WHERE custid = 10100")
	if res.Rows[0][0].F != 0.1 {
		t.Fatalf("default fill = %v", res.Rows[0][0])
	}
	mustExec(t, s, "ALTER TABLE products ADD note VARCHAR(20)")
	res = mustExec(t, s, "SELECT note FROM products WHERE custid = 10100")
	if !res.Rows[0][0].IsNull() {
		t.Fatalf("nullable fill = %v", res.Rows[0][0])
	}
	// New column is writable.
	mustExec(t, s, "UPDATE products SET note = 'sale' WHERE custid = 10100")
	res = mustExec(t, s, "SELECT COUNT(*) FROM products WHERE note = 'sale'")
	if res.Rows[0][0].I != 2 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

func TestAlterTableAddNotNullWithoutDefaultFails(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("ALTER TABLE products ADD x INTEGER NOT NULL")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeNotNullViolation {
		t.Fatalf("err = %v", err)
	}
}

func TestAlterTableDropColumn(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "ALTER TABLE products DROP COLUMN qty")
	if _, err := s.Exec("SELECT qty FROM products"); err == nil {
		t.Fatal("dropped column still selectable")
	}
	res := mustExec(t, s, "SELECT product_name, price FROM products WHERE custid = 10100 ORDER BY price")
	if len(res.Rows) != 2 || res.Rows[0][1].F != 329.99 {
		t.Fatalf("remaining columns corrupted: %v", rowsAsStrings(res))
	}
}

func TestAlterTableDropIndexedColumnFails(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("ALTER TABLE urldb DROP COLUMN url")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeFeature {
		t.Fatalf("err = %v", err)
	}
}

func TestAlterTableDropColumnFixesIndexPositions(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE INDEX qty_ix ON products (qty)")
	mustExec(t, s, "ALTER TABLE products DROP COLUMN price")
	// qty moved left by one; the index must still find rows.
	res := mustExec(t, s, "SELECT COUNT(*) FROM products WHERE qty = 10")
	if res.Rows[0][0].I != 1 {
		t.Fatalf("index after column drop = %v", res.Rows[0][0])
	}
}

func TestAlterTableRename(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "ALTER TABLE products RENAME TO inventory")
	if _, err := s.Exec("SELECT * FROM products"); err == nil {
		t.Fatal("old name still resolves")
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM inventory")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("renamed table count = %v", res.Rows[0][0])
	}
}

func TestAlterTableRollback(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "BEGIN")
	mustExec(t, s, "ALTER TABLE products ADD extra INTEGER DEFAULT 7")
	mustExec(t, s, "ALTER TABLE products RENAME TO prods2")
	mustExec(t, s, "ROLLBACK")
	if _, err := s.Exec("SELECT extra FROM products"); err == nil {
		t.Fatal("added column survived rollback")
	}
	res := mustExec(t, s, "SELECT COUNT(*) FROM products")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	// Primary-key-free products has a custid scan; verify urldb's index
	// still works via its own rollback path.
	res = mustExec(t, s, "SELECT title FROM urldb WHERE url = 'http://www.eso.org'")
	if len(res.Rows) != 1 {
		t.Fatal("unrelated index broken after ALTER rollback")
	}
}

// --- persistence ---

func TestDumpRestoreRoundTrip(t *testing.T) {
	s := mustSession(t)
	mustExec(t, s, "CREATE INDEX price_ix ON products (price)")
	var buf bytes.Buffer
	if err := s.db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	for _, want := range []string{"CREATE TABLE products", "CREATE TABLE urldb",
		"PRIMARY KEY", "CREATE INDEX price_ix"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q", want)
		}
	}
	db2 := NewDatabase("RESTORED")
	if err := Restore(db2, strings.NewReader(dump)); err != nil {
		t.Fatalf("restore: %v\ndump:\n%s", err, dump)
	}
	s2 := NewSession(db2)
	for _, q := range []string{
		"SELECT COUNT(*) FROM urldb",
		"SELECT COUNT(*) FROM products",
		"SELECT SUM(qty) FROM products",
	} {
		a := mustExec(t, s, q)
		b := mustExec(t, s2, q)
		if a.Rows[0][0] != b.Rows[0][0] {
			t.Errorf("%s: %v vs %v", q, a.Rows[0][0], b.Rows[0][0])
		}
	}
	// Indexes restored and functional.
	res := mustExec(t, s2, "SELECT title FROM urldb WHERE url = 'http://www.eso.org'")
	if len(res.Rows) != 1 {
		t.Fatal("pk index not restored")
	}
	// Dumps of original and restored databases are identical.
	var buf2 bytes.Buffer
	if err := db2.Dump(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != dump {
		t.Error("dump is not a fixed point")
	}
}

func TestDumpQuotesSpecialValues(t *testing.T) {
	db := NewDatabase("Q")
	s := NewSession(db)
	if _, err := s.ExecScript(`CREATE TABLE odd ("desc" VARCHAR(40), n INTEGER)`); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "INSERT INTO odd VALUES ('it''s a \"test\"', NULL)")
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase("Q2")
	if err := Restore(db2, &buf); err != nil {
		t.Fatalf("restore: %v", err)
	}
	s2 := NewSession(db2)
	res := mustExec(t, s2, `SELECT "desc", n FROM odd`)
	if res.Rows[0][0].S != `it's a "test"` || !res.Rows[0][1].IsNull() {
		t.Fatalf("round trip = %v", res.Rows[0])
	}
}

func TestDumpRestoreFile(t *testing.T) {
	s := mustSession(t)
	path := t.TempDir() + "/snap.sql"
	if err := s.db.DumpToFile(path); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase("F")
	if err := RestoreFromFile(db2, path); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(db2)
	res := mustExec(t, s2, "SELECT COUNT(*) FROM urldb")
	if res.Rows[0][0].I != 5 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
}

// TestDumpRestorePropertyLarge round-trips a generated dataset.
func TestDumpRestorePropertyLarge(t *testing.T) {
	db := NewDatabase("BIG")
	s := NewSession(db)
	if _, err := s.Exec("CREATE TABLE t (id INTEGER PRIMARY KEY, a DOUBLE, b VARCHAR(50), c BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := s.Exec("INSERT INTO t VALUES (?, ?, ?, ?)",
			NewInt(int64(i)), NewFloat(float64(i)*1.5),
			NewString(strings.Repeat("x'y\"z", i%5)), NewBool(i%3 == 0)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Dump(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase("BIG2")
	if err := Restore(db2, &buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewSession(db2)
	a := mustExec(t, s, "SELECT id, a, b, c FROM t ORDER BY id")
	b := mustExec(t, s2, "SELECT id, a, b, c FROM t ORDER BY id")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if identityKey(a.Rows[i]) != identityKey(b.Rows[i]) {
			t.Fatalf("row %d: %v vs %v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// --- derived tables ---

func TestDerivedTable(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `
SELECT d.custid, d.total
FROM (SELECT custid, SUM(price * qty) AS total FROM products GROUP BY custid) d
WHERE d.total > 400 ORDER BY d.total DESC`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", rowsAsStrings(res))
	}
	if res.Rows[0][0].I != 10100 {
		t.Fatalf("top spender = %v", res.Rows[0][0])
	}
}

func TestDerivedTableJoin(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `
SELECT p.product_name, agg.n
FROM products p
JOIN (SELECT custid, COUNT(*) AS n FROM products GROUP BY custid) agg
  ON p.custid = agg.custid
WHERE agg.n > 1
ORDER BY p.product_name`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", rowsAsStrings(res))
	}
}

func TestDerivedTableRequiresAlias(t *testing.T) {
	s := mustSession(t)
	_, err := s.Exec("SELECT * FROM (SELECT 1)")
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeSyntax {
		t.Fatalf("err = %v", err)
	}
}

func TestDerivedTableStar(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, "SELECT * FROM (SELECT custid, qty FROM products WHERE qty > 5) big")
	if len(res.Columns) != 2 || len(res.Rows) != 2 {
		t.Fatalf("cols=%v rows=%v", res.Columns, rowsAsStrings(res))
	}
}

func TestNestedDerivedTables(t *testing.T) {
	s := mustSession(t)
	res := mustExec(t, s, `
SELECT outer2.m FROM (
  SELECT MAX(total) AS m FROM (
    SELECT custid, SUM(qty) AS total FROM products GROUP BY custid
  ) inner2
) outer2`)
	if res.Rows[0][0].I != 10 {
		t.Fatalf("m = %v", res.Rows[0][0])
	}
}

// --- clock functions ---

func TestClockFunctions(t *testing.T) {
	s := mustSession(t)
	fixed := time.Date(1996, time.June, 4, 10, 30, 45, 0, time.UTC)
	s.db.SetClock(func() time.Time { return fixed })
	res := mustExec(t, s, "SELECT NOW(), CURDATE(), CURTIME()")
	if res.Rows[0][0].S != "1996-06-04 10:30:45" {
		t.Errorf("NOW() = %v", res.Rows[0][0])
	}
	if res.Rows[0][1].S != "1996-06-04" {
		t.Errorf("CURDATE() = %v", res.Rows[0][1])
	}
	if res.Rows[0][2].S != "10:30:45" {
		t.Errorf("CURTIME() = %v", res.Rows[0][2])
	}
	// Timestamps are ordinary strings: they store, compare, and index.
	mustExec(t, s, "CREATE TABLE log (at VARCHAR(20), msg VARCHAR(20))")
	mustExec(t, s, "INSERT INTO log VALUES (NOW(), 'hello')")
	res = mustExec(t, s, "SELECT COUNT(*) FROM log WHERE at >= '1996-01-01'")
	if res.Rows[0][0].I != 1 {
		t.Errorf("timestamp compare = %v", res.Rows[0][0])
	}
	if _, err := s.Exec("SELECT NOW(1)"); err == nil {
		t.Error("NOW with arguments must fail")
	}
}
