package sqldb

import (
	"strings"
	"sync"
)

// Table version counters.
//
// Every write that can change what a query over a table would return —
// INSERT, UPDATE, DELETE, CREATE/DROP/ALTER TABLE — bumps that table's
// version. A result cache layered above the engine records the versions
// of every table a query read alongside the cached rows; on lookup it
// compares the recorded versions against the current ones and treats any
// difference as an invalidation. This makes invalidation a cheap O(tables
// read) comparison at lookup time instead of a broadcast at write time.
//
// Versions are drawn from one database-wide sequence, so a table version
// never repeats — not even across a DROP and re-CREATE of the same name
// (per-table counters would restart at 1 and could collide with a stale
// cached entry).
//
// Under MVCC, bumps happen at commit: a transaction's writes are
// invisible until then, so mid-transaction bumps would only cause
// spurious misses. The bump runs inside the commit critical section,
// under vt.mu itself (bumpLocked), between stamping the written
// versions and publishing the commit sequence — so a cache that
// brackets a computation with TableVersions reads can never observe the
// commit's data paired with pre-commit versions or vice versa. Bumps
// remain conservative where it is cheap to be: a failed auto-commit
// write still bumps its target tables, DDL bumps even on failure, and a
// rollback bumps every table the transaction wrote (never tables it
// only read — see Session.Rollback). A spurious bump costs a cache
// miss; a missing bump would cost a stale hit.
//
// The counters live behind their own mutex, not db.mu, because the cache
// reads them without holding any engine lock.
type versionTable struct {
	mu       sync.Mutex
	seq      uint64
	versions map[string]uint64
}

// TableVersion returns the current version of the named table. A table
// that has never been written (or does not exist) reports 0.
func (db *Database) TableVersion(name string) uint64 {
	db.vt.mu.Lock()
	defer db.vt.mu.Unlock()
	return db.vt.versions[strings.ToLower(name)]
}

// TableVersions returns the current versions of the named tables, in
// order, as one consistent snapshot.
func (db *Database) TableVersions(names []string) []uint64 {
	out := make([]uint64, len(names))
	db.vt.mu.Lock()
	defer db.vt.mu.Unlock()
	for i, n := range names {
		out[i] = db.vt.versions[strings.ToLower(n)]
	}
	return out
}

// bumpVersions advances the version of each named table.
func (db *Database) bumpVersions(names ...string) {
	db.vt.mu.Lock()
	defer db.vt.mu.Unlock()
	db.bumpLocked(names)
}

// bumpLocked advances versions with vt.mu already held; the commit path
// calls it inside its stamp/publish critical section.
func (db *Database) bumpLocked(names []string) {
	if db.vt.versions == nil {
		db.vt.versions = map[string]uint64{}
	}
	for _, n := range names {
		if n == "" {
			continue
		}
		db.vt.seq++
		db.vt.versions[strings.ToLower(n)] = db.vt.seq
	}
}
