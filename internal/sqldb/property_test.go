package sqldb

import (
	"math/rand"
	"regexp"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// TestBTreePropertyInsertLookup checks that after an arbitrary sequence of
// inserts, every (key, rowID) pair is found by lookup and the ascend order
// is sorted.
func TestBTreePropertyInsertLookup(t *testing.T) {
	f := func(keys []int16) bool {
		tree := newBTree()
		want := map[int64][]int64{}
		for i, k := range keys {
			kv := NewInt(int64(k))
			tree.insert(kv, int64(i))
			want[int64(k)] = append(want[int64(k)], int64(i))
		}
		for k, ids := range want {
			post := tree.lookup(NewInt(k))
			if len(post) != len(ids) {
				return false
			}
		}
		// Ascend must be strictly increasing over distinct keys.
		prev := int64(-1 << 62)
		okOrder := true
		first := true
		tree.ascend(func(k Value, post []int64) bool {
			if !first && k.I <= prev {
				okOrder = false
				return false
			}
			first = false
			prev = k.I
			return true
		})
		return okOrder
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreePropertyDelete checks deletes remove exactly the targeted
// posting entries.
func TestBTreePropertyDelete(t *testing.T) {
	f := func(keys []uint8, delMask []bool) bool {
		tree := newBTree()
		for i, k := range keys {
			tree.insert(NewInt(int64(k)), int64(i))
		}
		deleted := map[int]bool{}
		for i := range keys {
			if i < len(delMask) && delMask[i] {
				if !tree.delete(NewInt(int64(keys[i])), int64(i)) {
					return false
				}
				deleted[i] = true
			}
		}
		counts := map[int64]int{}
		tree.ascend(func(k Value, post []int64) bool {
			counts[k.I] += len(post)
			return true
		})
		want := map[int64]int{}
		for i, k := range keys {
			if !deleted[i] {
				want[int64(k)]++
			}
		}
		if len(counts) > len(want) {
			return false
		}
		for k, n := range want {
			if counts[k] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBTreeRangeMatchesSort cross-checks ascendRange against a sorted
// reference for random bounds.
func TestBTreeRangeMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		tree := newBTree()
		var all []int64
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			k := int64(rng.Intn(100))
			tree.insert(NewInt(k), int64(i))
			all = append(all, k)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		lo := NewInt(int64(rng.Intn(100)))
		hi := NewInt(lo.I + int64(rng.Intn(50)))
		var got []int64
		tree.ascendRange(&lo, &hi, true, true, func(k Value, post []int64) bool {
			for range post {
				got = append(got, k.I)
			}
			return true
		})
		var want []int64
		for _, k := range all {
			if k >= lo.I && k <= hi.I {
				want = append(want, k)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: range [%d,%d] got %d keys, want %d",
				trial, lo.I, hi.I, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: got[%d]=%d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

// likeToRegexp builds a reference regexp for a LIKE pattern with no escape
// character, used as an oracle.
func likeToRegexp(pattern string) *regexp.Regexp {
	var sb strings.Builder
	sb.WriteString(`(?s)\A`)
	for _, r := range pattern {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString(`\z`)
	return regexp.MustCompile(sb.String())
}

// TestLikeMatchesRegexpOracle cross-checks likeMatch against a regexp
// translation on random short strings over a small alphabet.
func TestLikeMatchesRegexpOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []rune("ab%_")
	randStr := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			sb.WriteRune(alphabet[rng.Intn(len(alphabet))])
		}
		return sb.String()
	}
	for trial := 0; trial < 2000; trial++ {
		s := strings.ReplaceAll(strings.ReplaceAll(randStr(rng.Intn(8)), "%", "a"), "_", "b")
		pat := randStr(rng.Intn(6))
		got, err := likeMatch(s, pat, 0, false)
		if err != nil {
			t.Fatalf("likeMatch(%q, %q): %v", s, pat, err)
		}
		want := likeToRegexp(pat).MatchString(s)
		if got != want {
			t.Fatalf("likeMatch(%q, %q) = %v, oracle says %v", s, pat, got, want)
		}
	}
}

// TestComparePropertyAntisymmetry checks Compare(a,b) == -Compare(b,a) and
// reflexivity for random int/float/string values.
func TestComparePropertyAntisymmetry(t *testing.T) {
	mk := func(kind uint8, i int32, s string) Value {
		switch kind % 3 {
		case 0:
			return NewInt(int64(i))
		case 1:
			return NewFloat(float64(i) / 4)
		default:
			return NewString(s)
		}
	}
	f := func(k1, k2 uint8, i1, i2 int32, s1, s2 string) bool {
		a := mk(k1, i1, s1)
		b := mk(k2, i2, s2)
		ab, err1 := Compare(a, b)
		ba, err2 := Compare(b, a)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true // incomparable both ways is consistent
		}
		if ab != -ba {
			return false
		}
		self, err := Compare(a, a)
		return err == nil && self == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestIdentityKeyInjective checks different value rows get different keys
// and equal rows get equal keys.
func TestIdentityKeyInjective(t *testing.T) {
	f := func(a1, a2 int32, s1, s2 string) bool {
		r1 := []Value{NewInt(int64(a1)), NewString(s1)}
		r2 := []Value{NewInt(int64(a2)), NewString(s2)}
		k1, k2 := identityKey(r1), identityKey(r2)
		same := a1 == a2 && s1 == s2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestInsertSelectRoundTrip property: every inserted row comes back via
// SELECT with identical values.
func TestInsertSelectRoundTrip(t *testing.T) {
	f := func(ids []int16, names []string) bool {
		db := NewDatabase("prop")
		s := NewSession(db)
		if _, err := s.Exec("CREATE TABLE t (id INTEGER, name VARCHAR(100))"); err != nil {
			return false
		}
		n := len(ids)
		if len(names) < n {
			n = len(names)
		}
		for i := 0; i < n; i++ {
			if _, err := s.Exec("INSERT INTO t VALUES (?, ?)",
				NewInt(int64(ids[i])), NewString(names[i])); err != nil {
				return false
			}
		}
		res, err := s.Exec("SELECT id, name FROM t")
		if err != nil || len(res.Rows) != n {
			return false
		}
		for i := 0; i < n; i++ {
			if res.Rows[i][0].I != int64(ids[i]) || res.Rows[i][1].S != names[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestTxnRollbackProperty: arbitrary DML inside BEGIN/ROLLBACK leaves the
// table byte-identical to its pre-transaction state.
func TestTxnRollbackProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		db := NewDatabase("prop")
		s := NewSession(db)
		if _, err := s.ExecScript(`CREATE TABLE t (id INTEGER PRIMARY KEY, v VARCHAR(20))`); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			if _, err := s.Exec("INSERT INTO t VALUES (?, ?)",
				NewInt(int64(i)), NewString(strings.Repeat("x", rng.Intn(5)))); err != nil {
				t.Fatal(err)
			}
		}
		before, err := s.Exec("SELECT id, v FROM t ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Exec("BEGIN"); err != nil {
			t.Fatal(err)
		}
		for op := 0; op < 10; op++ {
			switch rng.Intn(3) {
			case 0:
				_, _ = s.Exec("INSERT INTO t VALUES (?, 'new')", NewInt(int64(100+op+trial*100)))
			case 1:
				_, _ = s.Exec("UPDATE t SET v = 'upd' WHERE id = ?", NewInt(int64(rng.Intn(25))))
			case 2:
				_, _ = s.Exec("DELETE FROM t WHERE id = ?", NewInt(int64(rng.Intn(25))))
			}
		}
		if _, err := s.Exec("ROLLBACK"); err != nil {
			t.Fatal(err)
		}
		after, err := s.Exec("SELECT id, v FROM t ORDER BY id")
		if err != nil {
			t.Fatal(err)
		}
		if len(before.Rows) != len(after.Rows) {
			t.Fatalf("trial %d: row count %d -> %d after rollback",
				trial, len(before.Rows), len(after.Rows))
		}
		for i := range before.Rows {
			if identityKey(before.Rows[i]) != identityKey(after.Rows[i]) {
				t.Fatalf("trial %d row %d: %v -> %v", trial, i, before.Rows[i], after.Rows[i])
			}
		}
	}
}
