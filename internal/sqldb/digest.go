package sqldb

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// Statement digests identify a statement *shape*: the SQL text with every
// literal and parameter replaced by '?', keywords upper-cased, identifiers
// lower-cased, and whitespace/comments normalized away. Two executions of
// "SELECT x FROM t WHERE id = 7" and "select X from T where ID = 9" share
// one digest, so the statement stats registry (and the planned plan cache,
// which will key on the same normalization) aggregates them together.

// NormalizeSQL returns the canonical shape of sql: literals and parameters
// become '?', keywords are upper-cased, identifiers lower-cased, comments
// dropped, and token spacing made uniform. Statements that do not lex fall
// back to a whitespace-collapsed copy of the raw text so callers always
// get a stable key.
func NormalizeSQL(sql string) string {
	toks, err := lexSQL(sql)
	if err != nil {
		return strings.Join(strings.Fields(sql), " ")
	}
	return normalizeTokens(toks)
}

// normalizeTokens renders a lexed token stream in canonical form.
func normalizeTokens(toks []token) string {
	var sb strings.Builder
	prev := ""
	for _, t := range toks {
		if t.kind == tkEOF {
			break
		}
		var text string
		switch t.kind {
		case tkNumber, tkString, tkParam:
			text = "?"
		case tkKeyword:
			text = t.text // the lexer already upper-cases keywords
		case tkIdent:
			text = strings.ToLower(t.text)
		default:
			text = t.text
		}
		if sb.Len() > 0 && spaceBetween(prev, text) {
			sb.WriteByte(' ')
		}
		sb.WriteString(text)
		prev = text
	}
	return sb.String()
}

// spaceBetween decides whether the canonical rendering separates prev and
// next with a space. Punctuation hugs its neighbours the way hand-written
// SQL does: "count(?)", "t.col", "(a, b)".
func spaceBetween(prev, next string) bool {
	switch next {
	case "(", ")", ",", ";", ".":
		return false
	}
	switch prev {
	case "(", ".":
		return false
	}
	return true
}

// DigestSQL returns the statement digest (a 16-hex-digit FNV-64a of the
// normalized shape) together with the normalized text itself.
func DigestSQL(sql string) (digest, norm string) {
	norm = NormalizeSQL(sql)
	return digestOf(norm), norm
}

// DigestSQLInner strips a leading EXPLAIN [ANALYZE] prefix and digests the
// statement underneath it, so an EXPLAIN ANALYZE run can file its plan
// under the digest the bare statement executes as. ok is false when sql is
// not an EXPLAIN statement.
func DigestSQLInner(sql string) (digest, norm string, ok bool) {
	toks, err := lexSQL(sql)
	if err != nil || len(toks) == 0 {
		return "", "", false
	}
	if toks[0].kind != tkKeyword || toks[0].text != "EXPLAIN" {
		return "", "", false
	}
	rest := toks[1:]
	if len(rest) > 0 && rest[0].kind == tkKeyword && rest[0].text == "ANALYZE" {
		rest = rest[1:]
	}
	norm = normalizeTokens(rest)
	return digestOf(norm), norm, true
}

func digestOf(norm string) string {
	h := fnv.New64a()
	h.Write([]byte(norm))
	return fmt.Sprintf("%016x", h.Sum64())
}
