package sqldb

import (
	"fmt"
	"strings"
)

// envCol names one slot of the executor's row layout: the (lower-cased)
// table qualifier and column name.
type envCol struct {
	tbl  string
	name string
}

// evalEnv is the evaluation environment for one row (or one group).
type evalEnv struct {
	cols   []envCol
	row    []Value
	params []Value
	aggs   []Value // aggregate results for the current group
	// vw enables subquery evaluation against the reader's snapshot; nil
	// where subqueries are not permitted (e.g. constant folding for LIMIT).
	vw *view
	// subCache memoises uncorrelated subquery results for one statement
	// execution. Shared across row environments of the same statement.
	subCache map[*Subquery][][]Value
}

// resolveColumn finds the slot for a column reference. Matching is
// case-insensitive; an unqualified name matching columns in more than one
// table is ambiguous.
func (env *evalEnv) resolveColumn(c *ColumnRef) (int, error) {
	want := strings.ToLower(c.Column)
	qual := strings.ToLower(c.Table)
	found := -1
	for i, ec := range env.cols {
		if ec.name != want {
			continue
		}
		if qual != "" && ec.tbl != qual {
			continue
		}
		if found >= 0 {
			return 0, &Error{Code: CodeAmbiguousColumn,
				Message: fmt.Sprintf("column reference %q is ambiguous", c.Column)}
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return 0, errUndefinedColumn(qual + "." + c.Column)
		}
		return 0, errUndefinedColumn(c.Column)
	}
	return found, nil
}

// bindExpr resolves all column references in e against env's layout,
// caching slot indexes so per-row evaluation is slot lookup only.
func bindExpr(e Expr, env *evalEnv) error {
	var bindErr error
	walkExpr(e, func(x Expr) bool {
		if bindErr != nil {
			return false
		}
		if c, ok := x.(*ColumnRef); ok {
			slot, err := env.resolveColumn(c)
			if err != nil {
				bindErr = err
				return false
			}
			c.slot = slot
		}
		return true
	})
	return bindErr
}

// eval evaluates a bound expression against one row environment.
func eval(e Expr, env *evalEnv) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColumnRef:
		if x.slot < 0 || x.slot >= len(env.row) {
			return Null, errInternal(fmt.Sprintf("unbound column %q", x.Column))
		}
		return env.row[x.slot], nil
	case *Param:
		if x.Index < 1 || x.Index > len(env.params) {
			return Null, &Error{Code: CodeWrongArity,
				Message: fmt.Sprintf("missing value for parameter %d", x.Index)}
		}
		return env.params[x.Index-1], nil
	case *Unary:
		return evalUnary(x, env)
	case *Binary:
		return evalBinary(x, env)
	case *LikeExpr:
		return evalLike(x, env)
	case *BetweenExpr:
		return evalBetween(x, env)
	case *InExpr:
		return evalIn(x, env)
	case *IsNullExpr:
		v, err := eval(x.X, env)
		if err != nil {
			return Null, err
		}
		return NewBool(v.IsNull() != x.Not), nil
	case *FuncCall:
		if x.aggSlot >= 0 {
			if x.aggSlot >= len(env.aggs) {
				return Null, errInternal("aggregate evaluated outside grouping")
			}
			return env.aggs[x.aggSlot], nil
		}
		return evalFunc(x, env)
	case *CaseExpr:
		return evalCase(x, env)
	case *CastExpr:
		v, err := eval(x.X, env)
		if err != nil {
			return Null, err
		}
		return coerceToColumn(v, x.To)
	case *Subquery:
		rows, err := evalSubquery(x, env)
		if err != nil {
			return Null, err
		}
		if len(rows) == 0 {
			return Null, nil
		}
		if len(rows) > 1 {
			return Null, &Error{Code: CodeCardinality,
				Message: "scalar subquery returned more than one row"}
		}
		if len(rows[0]) != 1 {
			return Null, &Error{Code: CodeCardinality,
				Message: "scalar subquery must return exactly one column"}
		}
		return rows[0][0], nil
	case *ExistsExpr:
		rows, err := evalSubquery(x.Sub, env)
		if err != nil {
			return Null, err
		}
		return NewBool((len(rows) > 0) != x.Not), nil
	default:
		return Null, errInternal(fmt.Sprintf("unknown expression node %T", e))
	}
}

func evalUnary(x *Unary, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "-":
		if v.IsNull() {
			return Null, nil
		}
		switch v.T {
		case TInt:
			return NewInt(-v.I), nil
		case TFloat:
			return NewFloat(-v.F), nil
		}
		return Null, &Error{Code: CodeDatatypeMismatch,
			Message: fmt.Sprintf("cannot negate %s", v.T)}
	case "NOT":
		t, known := v.Truth()
		if !known {
			return Null, nil
		}
		return NewBool(!t), nil
	}
	return Null, errInternal("unknown unary operator " + x.Op)
}

func evalBinary(x *Binary, env *evalEnv) (Value, error) {
	// AND/OR implement SQL three-valued logic with short-circuiting.
	switch x.Op {
	case "AND":
		l, err := eval(x.L, env)
		if err != nil {
			return Null, err
		}
		lt, lknown := l.Truth()
		if lknown && !lt {
			return NewBool(false), nil
		}
		r, err := eval(x.R, env)
		if err != nil {
			return Null, err
		}
		rt, rknown := r.Truth()
		if rknown && !rt {
			return NewBool(false), nil
		}
		if !lknown || !rknown {
			return Null, nil
		}
		return NewBool(true), nil
	case "OR":
		l, err := eval(x.L, env)
		if err != nil {
			return Null, err
		}
		lt, lknown := l.Truth()
		if lknown && lt {
			return NewBool(true), nil
		}
		r, err := eval(x.R, env)
		if err != nil {
			return Null, err
		}
		rt, rknown := r.Truth()
		if rknown && rt {
			return NewBool(true), nil
		}
		if !lknown || !rknown {
			return Null, nil
		}
		return NewBool(false), nil
	}
	l, err := eval(x.L, env)
	if err != nil {
		return Null, err
	}
	r, err := eval(x.R, env)
	if err != nil {
		return Null, err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		c, err := Compare(l, r)
		if err != nil {
			return Null, err
		}
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return NewBool(b), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return Null, nil
		}
		return NewString(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	}
	return Null, errInternal("unknown binary operator " + x.Op)
}

func evalArith(op string, l, r Value) (Value, error) {
	if l.IsNull() || r.IsNull() {
		return Null, nil
	}
	// Strings in arithmetic contexts are parsed numerically — the engine
	// receives every literal as a string when statements are assembled by
	// textual variable substitution, so this mirrors dynamic-SQL behaviour.
	l2, err := numify(l)
	if err != nil {
		return Null, err
	}
	r2, err := numify(r)
	if err != nil {
		return Null, err
	}
	if l2.T == TInt && r2.T == TInt {
		a, b := l2.I, r2.I
		switch op {
		case "+":
			return NewInt(a + b), nil
		case "-":
			return NewInt(a - b), nil
		case "*":
			return NewInt(a * b), nil
		case "/":
			if b == 0 {
				return Null, &Error{Code: CodeDivisionByZero, Message: "division by zero"}
			}
			return NewInt(a / b), nil
		case "%":
			if b == 0 {
				return Null, &Error{Code: CodeDivisionByZero, Message: "division by zero"}
			}
			return NewInt(a % b), nil
		}
	}
	af, _ := l2.AsFloat()
	bf, _ := r2.AsFloat()
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, &Error{Code: CodeDivisionByZero, Message: "division by zero"}
		}
		return NewFloat(af / bf), nil
	case "%":
		if bf == 0 {
			return Null, &Error{Code: CodeDivisionByZero, Message: "division by zero"}
		}
		return NewFloat(float64(int64(af) % int64(bf))), nil
	}
	return Null, errInternal("unknown arithmetic operator " + op)
}

// numify coerces a value to TInt or TFloat for arithmetic.
func numify(v Value) (Value, error) {
	switch v.T {
	case TInt, TFloat:
		return v, nil
	case TString:
		return coerceToColumn(v, TFloat)
	case TBool:
		if v.B {
			return NewInt(1), nil
		}
		return NewInt(0), nil
	}
	return Null, &Error{Code: CodeDatatypeMismatch,
		Message: fmt.Sprintf("%s is not numeric", v.T)}
}

func evalLike(x *LikeExpr, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Null, err
	}
	p, err := eval(x.Pattern, env)
	if err != nil {
		return Null, err
	}
	if v.IsNull() || p.IsNull() {
		return Null, nil
	}
	var escape rune
	hasEscape := false
	if x.Escape != nil {
		e, err := eval(x.Escape, env)
		if err != nil {
			return Null, err
		}
		if e.IsNull() {
			return Null, nil
		}
		rs := []rune(e.String())
		if len(rs) != 1 {
			return Null, &Error{Code: CodeInvalidText,
				Message: "ESCAPE must be a single character"}
		}
		escape = rs[0]
		hasEscape = true
	}
	ok, err := likeMatch(v.String(), p.String(), escape, hasEscape)
	if err != nil {
		return Null, err
	}
	return NewBool(ok != x.Not), nil
}

func evalBetween(x *BetweenExpr, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Null, err
	}
	lo, err := eval(x.Lo, env)
	if err != nil {
		return Null, err
	}
	hi, err := eval(x.Hi, env)
	if err != nil {
		return Null, err
	}
	if v.IsNull() || lo.IsNull() || hi.IsNull() {
		return Null, nil
	}
	c1, err := Compare(v, lo)
	if err != nil {
		return Null, err
	}
	c2, err := Compare(v, hi)
	if err != nil {
		return Null, err
	}
	in := c1 >= 0 && c2 <= 0
	return NewBool(in != x.Not), nil
}

// evalSubquery evaluates (and memoises) an uncorrelated subquery.
func evalSubquery(sub *Subquery, env *evalEnv) ([][]Value, error) {
	if env.vw == nil {
		return nil, &Error{Code: CodeFeature,
			Message: "subqueries are not allowed in this context"}
	}
	if env.subCache != nil {
		if rows, ok := env.subCache[sub]; ok {
			return rows, nil
		}
	}
	res, err := env.vw.execSelect(sub.Sel, env.params)
	if err != nil {
		return nil, err
	}
	if env.subCache != nil {
		env.subCache[sub] = res.Rows
	}
	return res.Rows, nil
}

func evalIn(x *InExpr, env *evalEnv) (Value, error) {
	v, err := eval(x.X, env)
	if err != nil {
		return Null, err
	}
	if x.Sub != nil {
		rows, err := evalSubquery(x.Sub, env)
		if err != nil {
			return Null, err
		}
		if v.IsNull() {
			return Null, nil
		}
		sawNull := false
		for _, row := range rows {
			if len(row) != 1 {
				return Null, &Error{Code: CodeCardinality,
					Message: "IN subquery must return exactly one column"}
			}
			if row[0].IsNull() {
				sawNull = true
				continue
			}
			c, err := Compare(v, row[0])
			if err != nil {
				return Null, err
			}
			if c == 0 {
				return NewBool(!x.Not), nil
			}
		}
		if sawNull {
			return Null, nil
		}
		return NewBool(x.Not), nil
	}
	if v.IsNull() {
		return Null, nil
	}
	sawNull := false
	for _, item := range x.List {
		iv, err := eval(item, env)
		if err != nil {
			return Null, err
		}
		if iv.IsNull() {
			sawNull = true
			continue
		}
		c, err := Compare(v, iv)
		if err != nil {
			return Null, err
		}
		if c == 0 {
			return NewBool(!x.Not), nil
		}
	}
	if sawNull {
		return Null, nil // unknown, per three-valued IN semantics
	}
	return NewBool(x.Not), nil
}

func evalCase(x *CaseExpr, env *evalEnv) (Value, error) {
	var operand Value
	var err error
	if x.Operand != nil {
		operand, err = eval(x.Operand, env)
		if err != nil {
			return Null, err
		}
	}
	for _, w := range x.Whens {
		cv, err := eval(w.Cond, env)
		if err != nil {
			return Null, err
		}
		matched := false
		if x.Operand != nil {
			matched = Equal(operand, cv)
		} else {
			t, known := cv.Truth()
			matched = known && t
		}
		if matched {
			return eval(w.Then, env)
		}
	}
	if x.Else != nil {
		return eval(x.Else, env)
	}
	return Null, nil
}
