package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of executing one statement. SELECT fills Columns
// and Rows; DML fills RowsAffected (and LastInsertID for single-row
// INSERT). Results are fully materialised: the engine evaluates the query
// under the database lock and hands the caller an immutable snapshot,
// which the Rows cursor then walks row-at-a-time (the fetch model the
// macro engine's %ROW block expects).
type Result struct {
	Columns      []string
	Rows         [][]Value
	RowsAffected int64
	LastInsertID int64
}

// --- row source assembly ---

// rowSet is an intermediate table of rows with a named layout.
type rowSet struct {
	cols []envCol
	rows [][]Value
}

// scanTable produces the rowSet for one base table, optionally routed
// through an index when the WHERE clause has a usable predicate. `where`
// may be nil. The full WHERE clause is always re-applied by the caller;
// index routing is purely a row-set reduction.
func (db *Database) scanTable(name, alias string, where Expr, params []Value) (*rowSet, error) {
	t, err := db.table(name)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	rs := &rowSet{}
	for _, c := range t.Columns {
		rs.cols = append(rs.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	rows := db.chooseAccessPath(t, qual, where, params)
	rs.rows = make([][]Value, len(rows))
	for i, r := range rows {
		rs.rows[i] = r.vals
	}
	return rs, nil
}

// chooseAccessPath picks between a full heap scan and an index scan based
// on top-level AND conjuncts of the WHERE clause. Returned rows are in
// row-ID order so results stay deterministic.
func (db *Database) chooseAccessPath(t *Table, qual string, where Expr, params []Value) []*storedRow {
	if where == nil || db.noIndexScan {
		return t.rows
	}
	for _, conj := range andConjuncts(where) {
		if rows, ok := tryIndexScan(t, qual, conj, params); ok {
			return rows
		}
	}
	return t.rows
}

// andConjuncts flattens a chain of top-level ANDs.
func andConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(andConjuncts(b.L), andConjuncts(b.R)...)
	}
	return []Expr{e}
}

// constValue evaluates e if it references no columns or aggregates.
func constValue(e Expr, params []Value) (Value, bool) {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ColumnRef:
			ok = false
			return false
		case *FuncCall:
			if isAggregate(x.(*FuncCall).Name) {
				ok = false
				return false
			}
		}
		return true
	})
	if !ok {
		return Null, false
	}
	env := &evalEnv{params: params}
	v, err := eval(e, env)
	if err != nil {
		return Null, false
	}
	return v, true
}

// columnForQual returns the table column position when c refers to table t
// (by the scan qualifier), or -1.
func columnForQual(t *Table, qual string, c *ColumnRef) int {
	if c.Table != "" && strings.ToLower(c.Table) != qual {
		return -1
	}
	return t.colIndex(c.Column)
}

// tryIndexScan attempts to satisfy one conjunct with an index. Supported
// shapes: col = const, const = col, col LIKE 'prefix%', and col
// range comparisons against constants.
func tryIndexScan(t *Table, qual string, conj Expr, params []Value) ([]*storedRow, bool) {
	collect := func(ids []int64) []*storedRow {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		rows := make([]*storedRow, 0, len(ids))
		for _, id := range ids {
			if r, ok := t.byID[id]; ok {
				rows = append(rows, r)
			}
		}
		return rows
	}
	switch x := conj.(type) {
	case *Binary:
		if x.Op == "=" {
			if c, ok := x.L.(*ColumnRef); ok {
				if pos := columnForQual(t, qual, c); pos >= 0 {
					if v, ok := constValue(x.R, params); ok && !v.IsNull() {
						if ix := t.indexOn(pos); ix != nil {
							key, err := coerceToColumn(v, t.Columns[pos].Type)
							if err != nil {
								return nil, false
							}
							return collect(append([]int64(nil), ix.tree.lookup(key)...)), true
						}
					}
				}
			}
			if c, ok := x.R.(*ColumnRef); ok {
				if pos := columnForQual(t, qual, c); pos >= 0 {
					if v, ok := constValue(x.L, params); ok && !v.IsNull() {
						if ix := t.indexOn(pos); ix != nil {
							key, err := coerceToColumn(v, t.Columns[pos].Type)
							if err != nil {
								return nil, false
							}
							return collect(append([]int64(nil), ix.tree.lookup(key)...)), true
						}
					}
				}
			}
		}
		if x.Op == "<" || x.Op == "<=" || x.Op == ">" || x.Op == ">=" {
			c, ok := x.L.(*ColumnRef)
			op := x.Op
			rhs := x.R
			if !ok {
				// const OP col → flip
				if c2, ok2 := x.R.(*ColumnRef); ok2 {
					c = c2
					rhs = x.L
					switch x.Op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				} else {
					return nil, false
				}
			}
			pos := columnForQual(t, qual, c)
			if pos < 0 {
				return nil, false
			}
			v, ok := constValue(rhs, params)
			if !ok || v.IsNull() {
				return nil, false
			}
			ix := t.indexOn(pos)
			if ix == nil {
				return nil, false
			}
			key, err := coerceToColumn(v, t.Columns[pos].Type)
			if err != nil {
				return nil, false
			}
			var ids []int64
			switch op {
			case "<":
				ix.tree.ascendRange(nil, &key, false, false, func(_ Value, post []int64) bool {
					ids = append(ids, post...)
					return true
				})
			case "<=":
				ix.tree.ascendRange(nil, &key, false, true, func(_ Value, post []int64) bool {
					ids = append(ids, post...)
					return true
				})
			case ">":
				ix.tree.ascendRange(&key, nil, false, false, func(_ Value, post []int64) bool {
					ids = append(ids, post...)
					return true
				})
			case ">=":
				ix.tree.ascendRange(&key, nil, true, false, func(_ Value, post []int64) bool {
					ids = append(ids, post...)
					return true
				})
			}
			return collect(ids), true
		}
	case *LikeExpr:
		if x.Not || x.Escape != nil {
			return nil, false
		}
		c, ok := x.X.(*ColumnRef)
		if !ok {
			return nil, false
		}
		pos := columnForQual(t, qual, c)
		if pos < 0 || t.Columns[pos].Type != TString {
			return nil, false
		}
		pv, ok := constValue(x.Pattern, params)
		if !ok || pv.IsNull() {
			return nil, false
		}
		prefix, ok := likePrefix(pv.String())
		if !ok || prefix == "" {
			return nil, false
		}
		ix := t.indexOn(pos)
		if ix == nil {
			return nil, false
		}
		var ids []int64
		ix.tree.scanPrefix(prefix, func(_ Value, post []int64) bool {
			ids = append(ids, post...)
			return true
		})
		return collect(ids), true
	}
	return nil, false
}

// crossJoin combines two row sets with a filter-less nested loop.
func crossJoin(a, b *rowSet) *rowSet {
	out := &rowSet{cols: append(append([]envCol{}, a.cols...), b.cols...)}
	out.rows = make([][]Value, 0, len(a.rows)*len(b.rows))
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// joinOn performs an INNER or LEFT join of a with b on cond. LEFT join
// emits a NULL-padded row for unmatched left rows.
func (db *Database) joinOn(a, b *rowSet, cond Expr, kind JoinKind, params []Value) (*rowSet, error) {
	out := &rowSet{cols: append(append([]envCol{}, a.cols...), b.cols...)}
	env := &evalEnv{cols: out.cols, params: params, db: db, subCache: map[*Subquery][][]Value{}}
	if cond != nil {
		if err := bindExpr(cond, env); err != nil {
			return nil, err
		}
	}
	nullPad := make([]Value, len(b.cols))
	for _, ra := range a.rows {
		matched := false
		for _, rb := range b.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			if cond != nil {
				env.row = row
				v, err := eval(cond, env)
				if err != nil {
					return nil, err
				}
				truth, known := v.Truth()
				if !known || !truth {
					continue
				}
			}
			matched = true
			out.rows = append(out.rows, row)
		}
		if kind == JoinLeft && !matched {
			row := make([]Value, 0, len(ra)+len(nullPad))
			row = append(row, ra...)
			row = append(row, nullPad...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// derivedRowSet materialises a derived table (FROM subquery) under its
// alias.
func (db *Database) derivedRowSet(sub *SelectStmt, alias string, params []Value) (*rowSet, error) {
	res, err := db.execSelect(sub, params)
	if err != nil {
		return nil, err
	}
	rs := &rowSet{rows: res.Rows}
	qual := strings.ToLower(alias)
	for _, c := range res.Columns {
		rs.cols = append(rs.cols, envCol{tbl: qual, name: strings.ToLower(c)})
	}
	return rs, nil
}

// buildFrom assembles the full FROM row set (joins + comma cross joins).
// `where` enables index routing only for the single-base-table case.
func (db *Database) buildFrom(sel *SelectStmt, params []Value) (*rowSet, error) {
	if len(sel.From) == 0 {
		// SELECT without FROM evaluates expressions over a single empty row.
		return &rowSet{rows: [][]Value{{}}}, nil
	}
	singleTable := len(sel.From) == 1 && len(sel.From[0].Joins) == 0 &&
		sel.From[0].Sub == nil
	var acc *rowSet
	for i, tr := range sel.From {
		var where Expr
		if singleTable && i == 0 {
			where = sel.Where
		}
		var rs *rowSet
		var err error
		if tr.Sub != nil {
			rs, err = db.derivedRowSet(tr.Sub, tr.Alias, params)
		} else {
			rs, err = db.scanTable(tr.Table, tr.Alias, where, params)
		}
		if err != nil {
			return nil, err
		}
		for _, jc := range tr.Joins {
			var right *rowSet
			if jc.Sub != nil {
				right, err = db.derivedRowSet(jc.Sub, jc.Alias, params)
			} else {
				right, err = db.scanTable(jc.Table, jc.Alias, nil, params)
			}
			if err != nil {
				return nil, err
			}
			if jc.Kind == JoinCross {
				rs = crossJoin(rs, right)
			} else {
				rs, err = db.joinOn(rs, right, jc.On, jc.Kind, params)
				if err != nil {
					return nil, err
				}
			}
		}
		if acc == nil {
			acc = rs
		} else {
			acc = crossJoin(acc, rs)
		}
	}
	return acc, nil
}

// --- SELECT execution ---

// projection describes the output columns of a SELECT.
type projection struct {
	names []string
	exprs []Expr
}

// expandProjection resolves *, t.*, and expression items into a concrete
// column list against the FROM layout.
func (db *Database) expandProjection(sel *SelectStmt, from *rowSet) (*projection, error) {
	pr := &projection{}
	addStarFor := func(qual string) error {
		matched := false
		for i, ec := range from.cols {
			if qual != "" && ec.tbl != qual {
				continue
			}
			matched = true
			pr.names = append(pr.names, db.displayColumnName(ec))
			pr.exprs = append(pr.exprs, &ColumnRef{Table: ec.tbl, Column: ec.name, slot: i})
		}
		if qual != "" && !matched {
			return errUndefinedTable(qual)
		}
		return nil
	}
	if sel.Star {
		if err := addStarFor(""); err != nil {
			return nil, err
		}
		return pr, nil
	}
	for i, item := range sel.Items {
		if item.TableStar != "" {
			if err := addStarFor(strings.ToLower(item.TableStar)); err != nil {
				return nil, err
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*ColumnRef); ok {
				name = c.Column
			} else {
				name = fmt.Sprintf("COL%d", i+1)
			}
		}
		pr.names = append(pr.names, name)
		pr.exprs = append(pr.exprs, item.Expr)
	}
	return pr, nil
}

// displayColumnName recovers the catalog-cased column name for a layout
// slot, falling back to the lower-cased layout name.
func (db *Database) displayColumnName(ec envCol) string {
	if t, err := db.table(ec.tbl); err == nil {
		if i := t.colIndex(ec.name); i >= 0 {
			return t.Columns[i].Name
		}
	}
	// The qualifier may be an alias; search all tables for a unique match.
	for _, t := range db.tables {
		if i := t.colIndex(ec.name); i >= 0 {
			return t.Columns[i].Name
		}
	}
	return ec.name
}

// collectAggregates walks the projection, HAVING, and ORDER BY expressions
// assigning aggregate slots. It returns the aggregate calls in slot order.
func collectAggregates(pr *projection, sel *SelectStmt) []*FuncCall {
	var aggs []*FuncCall
	assign := func(e Expr) {
		walkExpr(e, func(x Expr) bool {
			if fc, ok := x.(*FuncCall); ok && isAggregate(fc.Name) {
				fc.aggSlot = len(aggs)
				aggs = append(aggs, fc)
				return false // no nested aggregates
			}
			return true
		})
	}
	for _, e := range pr.exprs {
		assign(e)
	}
	assign(sel.Having)
	for _, o := range sel.OrderBy {
		assign(o.Expr)
	}
	return aggs
}

// execSelect dispatches between a single SELECT and a UNION chain.
func (db *Database) execSelect(sel *SelectStmt, params []Value) (*Result, error) {
	if len(sel.Unions) == 0 {
		return db.execSelectSingle(sel, params)
	}
	return db.execUnion(sel, params)
}

func (db *Database) execSelectSingle(sel *SelectStmt, params []Value) (*Result, error) {
	from, err := db.buildFrom(sel, params)
	if err != nil {
		return nil, err
	}
	subCache := map[*Subquery][][]Value{}
	env := &evalEnv{cols: from.cols, params: params, db: db, subCache: subCache}

	// WHERE filter.
	rows := from.rows
	if sel.Where != nil {
		if err := bindExpr(sel.Where, env); err != nil {
			return nil, err
		}
		kept := rows[:0:0]
		for _, r := range rows {
			env.row = r
			v, err := eval(sel.Where, env)
			if err != nil {
				return nil, err
			}
			t, known := v.Truth()
			if known && t {
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	pr, err := db.expandProjection(sel, from)
	if err != nil {
		return nil, err
	}
	aggs := collectAggregates(pr, sel)
	grouped := len(sel.GroupBy) > 0 || len(aggs) > 0 || sel.Having != nil

	// Resolve ORDER BY items that reference select aliases or ordinals.
	orderExprs := make([]Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
		if c, ok := o.Expr.(*ColumnRef); ok && c.Table == "" {
			for j, name := range pr.names {
				if strings.EqualFold(name, c.Column) {
					orderExprs[i] = pr.exprs[j]
					break
				}
			}
		}
		if l, ok := o.Expr.(*Literal); ok && l.Val.T == TInt {
			n := int(l.Val.I)
			if n >= 1 && n <= len(pr.exprs) {
				orderExprs[i] = pr.exprs[n-1]
			}
		}
	}

	// Bind everything that evaluates against the FROM layout.
	for _, e := range pr.exprs {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	for _, e := range sel.GroupBy {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := bindExpr(sel.Having, env); err != nil {
			return nil, err
		}
	}
	for _, e := range orderExprs {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	for _, fc := range aggs {
		for _, a := range fc.Args {
			if err := bindExpr(a, env); err != nil {
				return nil, err
			}
		}
	}

	type outRow struct {
		env  *evalEnv // row environment for final evaluation
		keys []Value  // order-by keys
	}
	var outs []outRow

	if grouped {
		type group struct {
			rep    []Value
			states []*aggState
		}
		var order []string
		groups := map[string]*group{}
		for _, r := range rows {
			env.row = r
			keyVals := make([]Value, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := eval(g, env)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := identityKey(keyVals)
			grp, ok := groups[k]
			if !ok {
				grp = &group{rep: r}
				for _, fc := range aggs {
					grp.states = append(grp.states, newAggState(fc))
				}
				groups[k] = grp
				order = append(order, k)
			}
			for i, fc := range aggs {
				if fc.Star {
					if err := grp.states[i].add(Null, true); err != nil {
						return nil, err
					}
					continue
				}
				av, err := eval(fc.Args[0], env)
				if err != nil {
					return nil, err
				}
				if err := grp.states[i].add(av, false); err != nil {
					return nil, err
				}
			}
		}
		// A grouped query with no GROUP BY and no input rows still yields
		// one row of aggregates over the empty set.
		if len(sel.GroupBy) == 0 && len(order) == 0 {
			grp := &group{rep: make([]Value, len(from.cols))}
			for _, fc := range aggs {
				grp.states = append(grp.states, newAggState(fc))
			}
			groups[""] = grp
			order = append(order, "")
		}
		for _, k := range order {
			grp := groups[k]
			genv := &evalEnv{cols: from.cols, params: params, row: grp.rep, db: db, subCache: subCache}
			genv.aggs = make([]Value, len(aggs))
			for i, st := range grp.states {
				genv.aggs[i] = st.result()
			}
			if sel.Having != nil {
				v, err := eval(sel.Having, genv)
				if err != nil {
					return nil, err
				}
				t, known := v.Truth()
				if !known || !t {
					continue
				}
			}
			outs = append(outs, outRow{env: genv})
		}
	} else {
		for _, r := range rows {
			outs = append(outs, outRow{env: &evalEnv{cols: from.cols, params: params, row: r, db: db, subCache: subCache}})
		}
	}

	// ORDER BY (stable sort, NULLs first ascending / last descending).
	if len(orderExprs) > 0 {
		for i := range outs {
			outs[i].keys = make([]Value, len(orderExprs))
			for j, e := range orderExprs {
				v, err := eval(e, outs[i].env)
				if err != nil {
					return nil, err
				}
				outs[i].keys[j] = v
			}
		}
		var sortErr error
		sort.SliceStable(outs, func(a, b int) bool {
			for j := range orderExprs {
				ka, kb := outs[a].keys[j], outs[b].keys[j]
				var c int
				switch {
				case ka.IsNull() && kb.IsNull():
					c = 0
				case ka.IsNull():
					c = -1
				case kb.IsNull():
					c = 1
				default:
					var err error
					c, err = Compare(ka, kb)
					if err != nil && sortErr == nil {
						sortErr = err
					}
				}
				if c == 0 {
					continue
				}
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// Projection.
	res := &Result{Columns: pr.names}
	for _, o := range outs {
		row := make([]Value, len(pr.exprs))
		for i, e := range pr.exprs {
			v, err := eval(e, o.env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]struct{}{}
		kept := res.Rows[:0:0]
		for _, r := range res.Rows {
			k := identityKey(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			kept = append(kept, r)
		}
		res.Rows = kept
	}

	// LIMIT / OFFSET.
	if sel.Offset != nil {
		v, ok := constValue(sel.Offset, params)
		if !ok {
			return nil, errSyntax("OFFSET must be a constant expression")
		}
		n, ok := v.AsInt()
		if !ok || n < 0 {
			return nil, errSyntax("OFFSET must be a non-negative integer")
		}
		if int(n) >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[n:]
		}
	}
	if sel.Limit != nil {
		v, ok := constValue(sel.Limit, params)
		if !ok {
			return nil, errSyntax("LIMIT must be a constant expression")
		}
		n, ok := v.AsInt()
		if !ok || n < 0 {
			return nil, errSyntax("LIMIT must be a non-negative integer")
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	res.RowsAffected = int64(len(res.Rows))
	return res, nil
}

// --- DML execution (session-aware, for undo logging) ---

func (s *Session) execInsert(ins *InsertStmt, params []Value) (*Result, error) {
	t, err := s.db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	cols := ins.Columns
	colPos := make([]int, 0, len(t.Columns))
	if len(cols) == 0 {
		for i := range t.Columns {
			colPos = append(colPos, i)
		}
	} else {
		seen := map[int]bool{}
		for _, c := range cols {
			p := t.colIndex(c)
			if p < 0 {
				return nil, errUndefinedColumn(c)
			}
			if seen[p] {
				return nil, errSyntax("column %q specified twice", c)
			}
			seen[p] = true
			colPos = append(colPos, p)
		}
	}
	env := &evalEnv{params: params, db: s.db, subCache: map[*Subquery][][]Value{}}
	res := &Result{}
	for _, rowExprs := range ins.Rows {
		if len(rowExprs) != len(colPos) {
			return nil, &Error{Code: CodeCardinality,
				Message: fmt.Sprintf("INSERT has %d values for %d columns",
					len(rowExprs), len(colPos))}
		}
		vals := make([]Value, len(t.Columns))
		provided := make([]bool, len(t.Columns))
		for i, e := range rowExprs {
			if err := bindExpr(e, env); err != nil {
				return nil, err
			}
			v, err := eval(e, env)
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, t.Columns[colPos[i]].Type)
			if err != nil {
				return nil, err
			}
			vals[colPos[i]] = cv
			provided[colPos[i]] = true
		}
		for i := range t.Columns {
			if !provided[i] {
				if t.Columns[i].HasDefault {
					vals[i] = t.Columns[i].Default
				} else {
					vals[i] = Null
				}
			}
			if t.Columns[i].NotNull && vals[i].IsNull() {
				return nil, &Error{Code: CodeNotNullViolation,
					Message: fmt.Sprintf("null value in column %q violates NOT NULL",
						t.Columns[i].Name)}
			}
		}
		id, err := t.insertRow(vals)
		if err != nil {
			return nil, err
		}
		s.logUndo(undoRec{kind: undoInsert, table: t.Name, rowID: id})
		res.RowsAffected++
		res.LastInsertID = id
	}
	return res, nil
}

func (s *Session) execUpdate(up *UpdateStmt, params []Value) (*Result, error) {
	t, err := s.db.table(up.Table)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(up.Alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	env := &evalEnv{params: params, db: s.db, subCache: map[*Subquery][][]Value{}}
	for _, c := range t.Columns {
		env.cols = append(env.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	if up.Where != nil {
		if err := bindExpr(up.Where, env); err != nil {
			return nil, err
		}
	}
	setPos := make([]int, len(up.Set))
	for i, sc := range up.Set {
		p := t.colIndex(sc.Column)
		if p < 0 {
			return nil, errUndefinedColumn(sc.Column)
		}
		setPos[i] = p
		if err := bindExpr(sc.Value, env); err != nil {
			return nil, err
		}
	}
	// Snapshot matching row IDs first, then mutate. The access path
	// chooser routes indexed predicates (UPDATE ... WHERE pk = ?) through
	// the index instead of scanning the heap.
	type pending struct {
		id   int64
		vals []Value
	}
	var plan []pending
	for _, row := range append([]*storedRow(nil), s.db.chooseAccessPath(t, qual, up.Where, params)...) {
		env.row = row.vals
		if up.Where != nil {
			v, err := eval(up.Where, env)
			if err != nil {
				return nil, err
			}
			truth, known := v.Truth()
			if !known || !truth {
				continue
			}
		}
		newVals := append([]Value(nil), row.vals...)
		for i, sc := range up.Set {
			v, err := eval(sc.Value, env)
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, t.Columns[setPos[i]].Type)
			if err != nil {
				return nil, err
			}
			if t.Columns[setPos[i]].NotNull && cv.IsNull() {
				return nil, &Error{Code: CodeNotNullViolation,
					Message: fmt.Sprintf("null value in column %q violates NOT NULL",
						t.Columns[setPos[i]].Name)}
			}
			newVals[setPos[i]] = cv
		}
		plan = append(plan, pending{id: row.id, vals: newVals})
	}
	res := &Result{}
	for _, p := range plan {
		old, err := t.updateRowByID(p.id, p.vals)
		if err != nil {
			return nil, err
		}
		s.logUndo(undoRec{kind: undoUpdate, table: t.Name, rowID: p.id, oldVals: old})
		res.RowsAffected++
	}
	return res, nil
}

func (s *Session) execDelete(del *DeleteStmt, params []Value) (*Result, error) {
	t, err := s.db.table(del.Table)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(del.Alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	env := &evalEnv{params: params, db: s.db, subCache: map[*Subquery][][]Value{}}
	for _, c := range t.Columns {
		env.cols = append(env.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	if del.Where != nil {
		if err := bindExpr(del.Where, env); err != nil {
			return nil, err
		}
	}
	var ids []int64
	for _, row := range s.db.chooseAccessPath(t, qual, del.Where, params) {
		if del.Where != nil {
			env.row = row.vals
			v, err := eval(del.Where, env)
			if err != nil {
				return nil, err
			}
			truth, known := v.Truth()
			if !known || !truth {
				continue
			}
		}
		ids = append(ids, row.id)
	}
	res := &Result{}
	for _, id := range ids {
		old, ok := t.deleteRowByID(id)
		if !ok {
			continue
		}
		s.logUndo(undoRec{kind: undoDelete, table: t.Name, rowID: id, oldVals: old})
		res.RowsAffected++
	}
	return res, nil
}

// --- DDL execution ---

func (s *Session) execCreateTable(ct *CreateTableStmt) (*Result, error) {
	key := strings.ToLower(ct.Table)
	if _, exists := s.db.tables[key]; exists {
		if ct.IfNotExists {
			return &Result{}, nil
		}
		return nil, &Error{Code: CodeDuplicateTable,
			Message: fmt.Sprintf("table %q already exists", ct.Table)}
	}
	t := &Table{Name: ct.Table, byID: map[int64]*storedRow{}}
	seen := map[string]bool{}
	var pkCol string
	for _, cd := range ct.Columns {
		lc := strings.ToLower(cd.Name)
		if seen[lc] {
			return nil, errSyntax("duplicate column name %q", cd.Name)
		}
		seen[lc] = true
		col := Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, PrimaryKey: cd.PrimaryKey}
		if cd.Default != nil {
			v, err := eval(cd.Default, &evalEnv{})
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, cd.Type)
			if err != nil {
				return nil, err
			}
			col.Default = cv
			col.HasDefault = true
		}
		if cd.PrimaryKey {
			if pkCol != "" {
				return nil, errSyntax("multiple PRIMARY KEY columns are not supported")
			}
			pkCol = cd.Name
		}
		t.Columns = append(t.Columns, col)
	}
	s.db.tables[key] = t
	s.logUndo(undoRec{kind: undoCreateTable, table: t.Name})
	if pkCol != "" {
		ixName := strings.ToLower(ct.Table) + "_pkey"
		ix, err := buildIndex(t, ixName, pkCol, true)
		if err != nil {
			return nil, err
		}
		t.indexes = append(t.indexes, ix)
		s.db.indexes[strings.ToLower(ixName)] = ix
		s.logUndo(undoRec{kind: undoCreateIndex, index: ixName})
	}
	return &Result{}, nil
}

func (s *Session) execDropTable(dt *DropTableStmt) (*Result, error) {
	key := strings.ToLower(dt.Table)
	t, exists := s.db.tables[key]
	if !exists {
		if dt.IfExists {
			return &Result{}, nil
		}
		return nil, errUndefinedTable(dt.Table)
	}
	var dropped []*Index
	for name, ix := range s.db.indexes {
		if strings.EqualFold(ix.Table, t.Name) {
			dropped = append(dropped, ix)
			delete(s.db.indexes, name)
		}
	}
	delete(s.db.tables, key)
	s.logUndo(undoRec{kind: undoDropTable, table: t.Name, droppedTable: t, droppedIndexes: dropped})
	return &Result{}, nil
}

func (s *Session) execCreateIndex(ci *CreateIndexStmt) (*Result, error) {
	key := strings.ToLower(ci.Name)
	if _, exists := s.db.indexes[key]; exists {
		return nil, &Error{Code: CodeDuplicateIndex,
			Message: fmt.Sprintf("index %q already exists", ci.Name)}
	}
	t, err := s.db.table(ci.Table)
	if err != nil {
		return nil, err
	}
	ix, err := buildIndex(t, ci.Name, ci.Column, ci.Unique)
	if err != nil {
		return nil, err
	}
	t.indexes = append(t.indexes, ix)
	s.db.indexes[key] = ix
	s.logUndo(undoRec{kind: undoCreateIndex, index: ci.Name})
	return &Result{}, nil
}

func (s *Session) execDropIndex(di *DropIndexStmt) (*Result, error) {
	key := strings.ToLower(di.Name)
	ix, exists := s.db.indexes[key]
	if !exists {
		if di.IfExists {
			return &Result{}, nil
		}
		return nil, &Error{Code: CodeUndefinedIndex,
			Message: fmt.Sprintf("index %q does not exist", di.Name)}
	}
	delete(s.db.indexes, key)
	if t, err := s.db.table(ix.Table); err == nil {
		for i, tix := range t.indexes {
			if tix == ix {
				t.indexes = append(t.indexes[:i:i], t.indexes[i+1:]...)
				break
			}
		}
	}
	s.logUndo(undoRec{kind: undoDropIndex, index: ix.Name, droppedIndex: ix})
	return &Result{}, nil
}
