package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Result is the outcome of executing one statement. SELECT fills Columns
// and Rows; DML fills RowsAffected (and LastInsertID for single-row
// INSERT). Results are fully materialised: the engine evaluates the query
// under the database lock and hands the caller an immutable snapshot,
// which the Rows cursor then walks row-at-a-time (the fetch model the
// macro engine's %ROW block expects).
type Result struct {
	Columns      []string
	Rows         [][]Value
	RowsAffected int64
	LastInsertID int64
}

// --- row source assembly ---

// rowSet is an intermediate table of rows with a named layout.
type rowSet struct {
	cols []envCol
	rows [][]Value
}

// scanTable produces the rowSet for one base table, optionally routed
// through an index when the WHERE clause has a usable predicate. `where`
// may be nil. The full WHERE clause is always re-applied by the caller;
// index routing is purely a row-set reduction. Rows resolve against the
// view's snapshot under a shared table latch held only for the scan —
// the returned value slices are immutable once committed, so evaluation
// proceeds latch-free.
func (vw view) scanTable(name, alias string, where Expr, params []Value, site any) (*rowSet, error) {
	t, err := vw.db.table(name)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	rs := &rowSet{}
	for _, c := range t.Columns {
		rs.cols = append(rs.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	start := vw.trk.now()
	t.mu.RLock()
	cands, plan := vw.candidateRows(t, qual, where, params)
	rs.rows = make([][]Value, 0, len(cands))
	for _, r := range cands {
		if v := r.visibleVersion(vw.txn, vw.snap); v != nil {
			rs.rows = append(rs.rows, v.vals)
		}
	}
	t.mu.RUnlock()
	noteScan(t, plan, len(rs.rows))
	vw.trk.scan(site, plan, len(cands), len(rs.rows), start)
	return rs, nil
}

// noteScan bumps the per-table and per-index access counters for one
// scan. Unconditional: the counters are plain atomics, cheap enough to
// keep accurate even when the obs registry is disabled.
func noteScan(t *Table, plan *indexScanPlan, rows int) {
	if plan != nil {
		t.idxScans.Add(1)
		plan.ix.scans.Add(1)
	} else {
		t.seqScans.Add(1)
	}
	t.rowsRead.Add(int64(rows))
}

// candidateRows picks between a full heap scan and an index scan based
// on top-level AND conjuncts of the WHERE clause. Returned rows are in
// row-ID order so results stay deterministic; they are candidates only
// (index postings are a multiset over versions), so the caller must
// resolve snapshot visibility and re-apply the WHERE clause. The second
// return is the access-path decision (nil = sequential scan), which
// EXPLAIN renders and the tracker records. Caller holds the table latch.
func (vw view) candidateRows(t *Table, qual string, where Expr, params []Value) ([]*storedRow, *indexScanPlan) {
	if p := vw.planScanAccess(t, qual, where, params); p != nil {
		return t.runIndexScan(p), p
	}
	return t.rows, nil
}

// planScanAccess decides the access path for scanning t under the given
// WHERE clause. With the cost-based planner on, every conjunct an index
// can satisfy becomes a candidate and the one expected to examine the
// fewest rows wins; with it off, the legacy first-match rule applies.
// Pure planning — no tree reads — so EXPLAIN (without ANALYZE) calls it
// too. Caller holds db.mu at least shared (DDL excluded).
func (vw view) planScanAccess(t *Table, qual string, where Expr, params []Value) *indexScanPlan {
	if where == nil || vw.db.noIndexScan {
		return nil
	}
	if vw.db.noPlanner {
		for _, conj := range andConjuncts(where) {
			if p := planIndexScan(t, qual, conj, params); p != nil {
				return p
			}
		}
		return nil
	}
	var best *indexScanPlan
	var bestRows float64
	for _, conj := range andConjuncts(where) {
		p := planIndexScan(t, qual, conj, params)
		if p == nil {
			continue
		}
		if rows := planEstRows(t, p); best == nil || rows < bestRows {
			best, bestRows = p, rows
		}
	}
	return best
}

// andConjuncts flattens a chain of top-level ANDs.
func andConjuncts(e Expr) []Expr {
	if b, ok := e.(*Binary); ok && b.Op == "AND" {
		return append(andConjuncts(b.L), andConjuncts(b.R)...)
	}
	return []Expr{e}
}

// constValue evaluates e if it references no columns or aggregates.
func constValue(e Expr, params []Value) (Value, bool) {
	ok := true
	walkExpr(e, func(x Expr) bool {
		switch x.(type) {
		case *ColumnRef:
			ok = false
			return false
		case *FuncCall:
			if isAggregate(x.(*FuncCall).Name) {
				ok = false
				return false
			}
		}
		return true
	})
	if !ok {
		return Null, false
	}
	env := &evalEnv{params: params}
	v, err := eval(e, env)
	if err != nil {
		return Null, false
	}
	return v, true
}

// columnForQual returns the table column position when c refers to table t
// (by the scan qualifier), or -1.
func columnForQual(t *Table, qual string, c *ColumnRef) int {
	if c.Table != "" && strings.ToLower(c.Table) != qual {
		return -1
	}
	return t.colIndex(c.Column)
}

// indexScanPlan is one resolved access-path decision: which index serves
// which conjunct, with the comparison key already coerced to the column
// type. Planning (shape matching) is separated from running (tree reads)
// so EXPLAIN can show the decision without touching the data.
type indexScanPlan struct {
	ix     *Index
	op     string // "=", "<", "<=", ">", ">=", or "like"
	key    Value  // comparison key for "=" and range ops
	prefix string // literal prefix for "like"
	conj   Expr   // the WHERE conjunct the index satisfies
}

// planIndexScan attempts to satisfy one conjunct with an index. Supported
// shapes: col = const, const = col, col LIKE 'prefix%', and col range
// comparisons against constants. Returns nil when no index applies.
func planIndexScan(t *Table, qual string, conj Expr, params []Value) *indexScanPlan {
	switch x := conj.(type) {
	case *Binary:
		if x.Op == "=" {
			for _, side := range [2]struct{ col, val Expr }{{x.L, x.R}, {x.R, x.L}} {
				c, ok := side.col.(*ColumnRef)
				if !ok {
					continue
				}
				pos := columnForQual(t, qual, c)
				if pos < 0 {
					continue
				}
				v, ok := constValue(side.val, params)
				if !ok || v.IsNull() {
					continue
				}
				ix := t.indexOn(pos)
				if ix == nil {
					continue
				}
				key, err := coerceToColumn(v, t.Columns[pos].Type)
				if err != nil {
					return nil
				}
				return &indexScanPlan{ix: ix, op: "=", key: key, conj: conj}
			}
			return nil
		}
		if x.Op == "<" || x.Op == "<=" || x.Op == ">" || x.Op == ">=" {
			c, ok := x.L.(*ColumnRef)
			op := x.Op
			rhs := x.R
			if !ok {
				// const OP col → flip
				if c2, ok2 := x.R.(*ColumnRef); ok2 {
					c = c2
					rhs = x.L
					switch x.Op {
					case "<":
						op = ">"
					case "<=":
						op = ">="
					case ">":
						op = "<"
					case ">=":
						op = "<="
					}
				} else {
					return nil
				}
			}
			pos := columnForQual(t, qual, c)
			if pos < 0 {
				return nil
			}
			v, ok := constValue(rhs, params)
			if !ok || v.IsNull() {
				return nil
			}
			ix := t.indexOn(pos)
			if ix == nil {
				return nil
			}
			key, err := coerceToColumn(v, t.Columns[pos].Type)
			if err != nil {
				return nil
			}
			return &indexScanPlan{ix: ix, op: op, key: key, conj: conj}
		}
	case *LikeExpr:
		if x.Not || x.Escape != nil {
			return nil
		}
		c, ok := x.X.(*ColumnRef)
		if !ok {
			return nil
		}
		pos := columnForQual(t, qual, c)
		if pos < 0 || t.Columns[pos].Type != TString {
			return nil
		}
		pv, ok := constValue(x.Pattern, params)
		if !ok || pv.IsNull() {
			return nil
		}
		prefix, ok := likePrefix(pv.String())
		if !ok || prefix == "" {
			return nil
		}
		ix := t.indexOn(pos)
		if ix == nil {
			return nil
		}
		return &indexScanPlan{ix: ix, op: "like", prefix: prefix, conj: conj}
	}
	return nil
}

// runIndexScan executes a planned index access. Because postings are a
// multiset over row versions, the same row ID can surface more than
// once; collect sorts and de-duplicates so each candidate appears
// exactly once, in row-ID order. Caller holds the table latch.
func (t *Table) runIndexScan(p *indexScanPlan) []*storedRow {
	collect := func(ids []int64) []*storedRow {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		rows := make([]*storedRow, 0, len(ids))
		last := int64(-1)
		for _, id := range ids {
			if id == last {
				continue
			}
			last = id
			if r, ok := t.byID[id]; ok {
				rows = append(rows, r)
			}
		}
		return rows
	}
	var ids []int64
	gather := func(_ Value, post []int64) bool {
		ids = append(ids, post...)
		return true
	}
	switch p.op {
	case "=":
		ids = append(ids, p.ix.tree.lookup(p.key)...)
	case "<":
		p.ix.tree.ascendRange(nil, &p.key, false, false, gather)
	case "<=":
		p.ix.tree.ascendRange(nil, &p.key, false, true, gather)
	case ">":
		p.ix.tree.ascendRange(&p.key, nil, false, false, gather)
	case ">=":
		p.ix.tree.ascendRange(&p.key, nil, true, false, gather)
	case "like":
		p.ix.tree.scanPrefix(p.prefix, gather)
	}
	return collect(ids)
}

// crossJoin combines two row sets with a filter-less nested loop.
func crossJoin(a, b *rowSet) *rowSet {
	out := &rowSet{cols: append(append([]envCol{}, a.cols...), b.cols...)}
	out.rows = make([][]Value, 0, len(a.rows)*len(b.rows))
	for _, ra := range a.rows {
		for _, rb := range b.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			out.rows = append(out.rows, row)
		}
	}
	return out
}

// joinOn performs an INNER or LEFT join of a with b on cond. LEFT join
// emits a NULL-padded row for unmatched left rows.
func (vw view) joinOn(a, b *rowSet, cond Expr, kind JoinKind, params []Value) (*rowSet, error) {
	out := &rowSet{cols: append(append([]envCol{}, a.cols...), b.cols...)}
	env := &evalEnv{cols: out.cols, params: params, vw: &vw, subCache: map[*Subquery][][]Value{}}
	if cond != nil {
		if err := bindExpr(cond, env); err != nil {
			return nil, err
		}
	}
	nullPad := make([]Value, len(b.cols))
	for _, ra := range a.rows {
		matched := false
		for _, rb := range b.rows {
			row := make([]Value, 0, len(ra)+len(rb))
			row = append(row, ra...)
			row = append(row, rb...)
			if cond != nil {
				env.row = row
				v, err := eval(cond, env)
				if err != nil {
					return nil, err
				}
				truth, known := v.Truth()
				if !known || !truth {
					continue
				}
			}
			matched = true
			out.rows = append(out.rows, row)
		}
		if kind == JoinLeft && !matched {
			row := make([]Value, 0, len(ra)+len(nullPad))
			row = append(row, ra...)
			row = append(row, nullPad...)
			out.rows = append(out.rows, row)
		}
	}
	return out, nil
}

// derivedRowSet materialises a derived table (FROM subquery) under its
// alias.
func (vw view) derivedRowSet(sub *SelectStmt, alias string, params []Value, site any) (*rowSet, error) {
	start := vw.trk.now()
	res, err := vw.execSelect(sub, params)
	if err != nil {
		return nil, err
	}
	rs := &rowSet{rows: res.Rows}
	qual := strings.ToLower(alias)
	for _, c := range res.Columns {
		rs.cols = append(rs.cols, envCol{tbl: qual, name: strings.ToLower(c)})
	}
	vw.trk.scan(site, nil, len(rs.rows), len(rs.rows), start)
	return rs, nil
}

// buildFrom assembles the full FROM row set (joins + comma cross joins)
// and returns the residual WHERE clause the caller must still apply —
// sel.Where on the legacy path, or what's left after the planner pushed
// conjuncts below the joins. `where` enables index routing only for the
// single-base-table case. Tracker sites are addresses into sel's From
// slice: execUnion's head copy shares that backing array with the
// original statement, so the events land on the nodes the plan renderer
// keyed.
func (vw view) buildFrom(sel *SelectStmt, params []Value) (*rowSet, Expr, error) {
	if len(sel.From) == 0 {
		// SELECT without FROM evaluates expressions over a single empty row.
		return &rowSet{rows: [][]Value{{}}}, sel.Where, nil
	}
	if fp := vw.planQuery(sel); fp != nil {
		rs, err := vw.execFromPlan(fp, params)
		return rs, fp.residual, err
	}
	singleTable := len(sel.From) == 1 && len(sel.From[0].Joins) == 0 &&
		sel.From[0].Sub == nil
	var acc *rowSet
	for i := range sel.From {
		tr := &sel.From[i]
		var where Expr
		if singleTable && i == 0 {
			where = sel.Where
		}
		var rs *rowSet
		var err error
		if tr.Sub != nil {
			rs, err = vw.derivedRowSet(tr.Sub, tr.Alias, params, tr)
		} else {
			rs, err = vw.scanTable(tr.Table, tr.Alias, where, params, tr)
		}
		if err != nil {
			return nil, nil, err
		}
		for j := range tr.Joins {
			jc := &tr.Joins[j]
			var right *rowSet
			if jc.Sub != nil {
				right, err = vw.derivedRowSet(jc.Sub, jc.Alias, params, jc)
			} else {
				right, err = vw.scanTable(jc.Table, jc.Alias, nil, params, jc)
			}
			if err != nil {
				return nil, nil, err
			}
			joinStart := vw.trk.now()
			inRows := len(rs.rows)
			if jc.Kind == JoinCross {
				rs = crossJoin(rs, right)
			} else {
				rs, err = vw.joinOn(rs, right, jc.On, jc.Kind, params)
				if err != nil {
					return nil, nil, err
				}
			}
			vw.trk.join(jc, inRows*len(right.rows), len(rs.rows), joinStart)
		}
		if acc == nil {
			acc = rs
		} else {
			acc = crossJoin(acc, rs)
		}
	}
	return acc, sel.Where, nil
}

// scanRel produces one planned relation's row set: the base-table or
// derived-table scan with this relation's pushed conjuncts applied. For
// base tables the pushed conjuncts also drive index routing; the full
// pushed filter is then re-applied (index scans over-approximate).
func (vw view) scanRel(rp *relPlan, params []Value) (*rowSet, error) {
	pushed := andJoin(rp.pushed)
	var rs *rowSet
	var err error
	if rp.sub != nil {
		rs, err = vw.derivedRowSet(rp.sub, rp.alias, params, rp.site)
	} else {
		rs, err = vw.scanTable(rp.table, rp.alias, pushed, params, rp.site)
	}
	if err != nil {
		return nil, err
	}
	if pushed == nil {
		return rs, nil
	}
	env := &evalEnv{cols: rs.cols, params: params, vw: &vw, subCache: map[*Subquery][][]Value{}}
	if err := bindExpr(pushed, env); err != nil {
		return nil, err
	}
	kept := rs.rows[:0:0]
	for _, r := range rs.rows {
		env.row = r
		v, err := eval(pushed, env)
		if err != nil {
			return nil, err
		}
		if t, known := v.Truth(); known && t {
			kept = append(kept, r)
		}
	}
	vw.trk.stage(rp.site, "pushfilter", len(rs.rows), len(kept))
	rs.rows = kept
	return rs, nil
}

// execFromPlan executes a planned FROM clause: scan each relation in
// join order (pushed filters applied at the scan), join left-deep with
// each step's conditions, then remap the layout back to declaration
// order when the planner reordered — projection, *-expansion, and
// ambiguity resolution must see the layout the statement declared.
func (vw view) execFromPlan(fp *fromPlan, params []Value) (*rowSet, error) {
	widths := make([]int, len(fp.rels))
	var acc *rowSet
	for i, rp := range fp.rels {
		rs, err := vw.scanRel(rp, params)
		if err != nil {
			return nil, err
		}
		widths[i] = len(rs.cols)
		if i == 0 {
			acc = rs
			continue
		}
		cond := andJoin(fp.steps[i])
		start := vw.trk.now()
		examined := len(acc.rows) * len(rs.rows)
		if cond == nil {
			acc = crossJoin(acc, rs)
		} else {
			acc, err = vw.joinOn(acc, rs, cond, JoinInner, params)
			if err != nil {
				return nil, err
			}
		}
		vw.trk.pjoin(rp.site, examined, len(acc.rows), start)
	}
	if !fp.reordered {
		return acc, nil
	}
	type block struct{ off, w int }
	blocks := make([]block, len(fp.rels)) // indexed by declaration position
	off := 0
	for i, rp := range fp.rels {
		blocks[rp.declIdx] = block{off: off, w: widths[i]}
		off += widths[i]
	}
	out := &rowSet{cols: make([]envCol, 0, len(acc.cols))}
	for _, b := range blocks {
		out.cols = append(out.cols, acc.cols[b.off:b.off+b.w]...)
	}
	out.rows = make([][]Value, len(acc.rows))
	for ri, r := range acc.rows {
		nr := make([]Value, 0, len(r))
		for _, b := range blocks {
			nr = append(nr, r[b.off:b.off+b.w]...)
		}
		out.rows[ri] = nr
	}
	return out, nil
}

// --- SELECT execution ---

// projection describes the output columns of a SELECT.
type projection struct {
	names []string
	exprs []Expr
}

// expandProjection resolves *, t.*, and expression items into a concrete
// column list against the FROM layout.
func (vw view) expandProjection(sel *SelectStmt, from *rowSet) (*projection, error) {
	pr := &projection{}
	addStarFor := func(qual string) error {
		matched := false
		for i, ec := range from.cols {
			if qual != "" && ec.tbl != qual {
				continue
			}
			matched = true
			pr.names = append(pr.names, vw.displayColumnName(ec))
			pr.exprs = append(pr.exprs, &ColumnRef{Table: ec.tbl, Column: ec.name, slot: i})
		}
		if qual != "" && !matched {
			return errUndefinedTable(qual)
		}
		return nil
	}
	if sel.Star {
		if err := addStarFor(""); err != nil {
			return nil, err
		}
		return pr, nil
	}
	for i, item := range sel.Items {
		if item.TableStar != "" {
			if err := addStarFor(strings.ToLower(item.TableStar)); err != nil {
				return nil, err
			}
			continue
		}
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*ColumnRef); ok {
				name = c.Column
			} else {
				name = fmt.Sprintf("COL%d", i+1)
			}
		}
		pr.names = append(pr.names, name)
		pr.exprs = append(pr.exprs, item.Expr)
	}
	return pr, nil
}

// displayColumnName recovers the catalog-cased column name for a layout
// slot, falling back to the lower-cased layout name.
func (vw view) displayColumnName(ec envCol) string {
	if t, err := vw.db.table(ec.tbl); err == nil {
		if i := t.colIndex(ec.name); i >= 0 {
			return t.Columns[i].Name
		}
	}
	// The qualifier may be an alias; search all tables for a unique match.
	for _, t := range vw.db.tables {
		if i := t.colIndex(ec.name); i >= 0 {
			return t.Columns[i].Name
		}
	}
	return ec.name
}

// collectAggregates walks the projection, HAVING, and ORDER BY expressions
// assigning aggregate slots. It returns the aggregate calls in slot order.
func collectAggregates(pr *projection, sel *SelectStmt) []*FuncCall {
	var aggs []*FuncCall
	assign := func(e Expr) {
		walkExpr(e, func(x Expr) bool {
			if fc, ok := x.(*FuncCall); ok && isAggregate(fc.Name) {
				fc.aggSlot = len(aggs)
				aggs = append(aggs, fc)
				return false // no nested aggregates
			}
			return true
		})
	}
	for _, e := range pr.exprs {
		assign(e)
	}
	assign(sel.Having)
	for _, o := range sel.OrderBy {
		assign(o.Expr)
	}
	return aggs
}

// execSelect dispatches between a single SELECT and a UNION chain.
func (vw view) execSelect(sel *SelectStmt, params []Value) (*Result, error) {
	if len(sel.Unions) == 0 {
		return vw.execSelectSingle(sel, params)
	}
	return vw.execUnion(sel, params)
}

func (vw view) execSelectSingle(sel *SelectStmt, params []Value) (*Result, error) {
	selStart := vw.trk.now()
	from, residual, err := vw.buildFrom(sel, params)
	if err != nil {
		return nil, err
	}
	subCache := map[*Subquery][][]Value{}
	env := &evalEnv{cols: from.cols, params: params, vw: &vw, subCache: subCache}

	// WHERE filter. When the planner engaged, conjuncts it pushed into
	// scans or join steps are gone already; residual holds what is left.
	rows := from.rows
	if residual != nil {
		if err := bindExpr(residual, env); err != nil {
			return nil, err
		}
		kept := rows[:0:0]
		for _, r := range rows {
			env.row = r
			v, err := eval(residual, env)
			if err != nil {
				return nil, err
			}
			t, known := v.Truth()
			if known && t {
				kept = append(kept, r)
			}
		}
		rows = kept
		vw.trk.stage(sel, "where", len(from.rows), len(rows))
	}

	pr, err := vw.expandProjection(sel, from)
	if err != nil {
		return nil, err
	}
	aggs := collectAggregates(pr, sel)
	grouped := len(sel.GroupBy) > 0 || len(aggs) > 0 || sel.Having != nil

	// Resolve ORDER BY items that reference select aliases or ordinals.
	orderExprs := make([]Expr, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		orderExprs[i] = o.Expr
		if c, ok := o.Expr.(*ColumnRef); ok && c.Table == "" {
			for j, name := range pr.names {
				if strings.EqualFold(name, c.Column) {
					orderExprs[i] = pr.exprs[j]
					break
				}
			}
		}
		if l, ok := o.Expr.(*Literal); ok && l.Val.T == TInt {
			n := int(l.Val.I)
			if n >= 1 && n <= len(pr.exprs) {
				orderExprs[i] = pr.exprs[n-1]
			}
		}
	}

	// Bind everything that evaluates against the FROM layout.
	for _, e := range pr.exprs {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	for _, e := range sel.GroupBy {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := bindExpr(sel.Having, env); err != nil {
			return nil, err
		}
	}
	for _, e := range orderExprs {
		if err := bindExpr(e, env); err != nil {
			return nil, err
		}
	}
	for _, fc := range aggs {
		for _, a := range fc.Args {
			if err := bindExpr(a, env); err != nil {
				return nil, err
			}
		}
	}

	type outRow struct {
		env  *evalEnv // row environment for final evaluation
		keys []Value  // order-by keys
	}
	var outs []outRow

	if grouped {
		type group struct {
			rep    []Value
			states []*aggState
		}
		var order []string
		groups := map[string]*group{}
		for _, r := range rows {
			env.row = r
			keyVals := make([]Value, len(sel.GroupBy))
			for i, g := range sel.GroupBy {
				v, err := eval(g, env)
				if err != nil {
					return nil, err
				}
				keyVals[i] = v
			}
			k := identityKey(keyVals)
			grp, ok := groups[k]
			if !ok {
				grp = &group{rep: r}
				for _, fc := range aggs {
					grp.states = append(grp.states, newAggState(fc))
				}
				groups[k] = grp
				order = append(order, k)
			}
			for i, fc := range aggs {
				if fc.Star {
					if err := grp.states[i].add(Null, true); err != nil {
						return nil, err
					}
					continue
				}
				av, err := eval(fc.Args[0], env)
				if err != nil {
					return nil, err
				}
				if err := grp.states[i].add(av, false); err != nil {
					return nil, err
				}
			}
		}
		// A grouped query with no GROUP BY and no input rows still yields
		// one row of aggregates over the empty set.
		if len(sel.GroupBy) == 0 && len(order) == 0 {
			grp := &group{rep: make([]Value, len(from.cols))}
			for _, fc := range aggs {
				grp.states = append(grp.states, newAggState(fc))
			}
			groups[""] = grp
			order = append(order, "")
		}
		for _, k := range order {
			grp := groups[k]
			genv := &evalEnv{cols: from.cols, params: params, row: grp.rep, vw: &vw, subCache: subCache}
			genv.aggs = make([]Value, len(aggs))
			for i, st := range grp.states {
				genv.aggs[i] = st.result()
			}
			if sel.Having != nil {
				v, err := eval(sel.Having, genv)
				if err != nil {
					return nil, err
				}
				t, known := v.Truth()
				if !known || !t {
					continue
				}
			}
			outs = append(outs, outRow{env: genv})
		}
		vw.trk.stage(sel, "aggregate", len(rows), len(outs))
	} else {
		for _, r := range rows {
			outs = append(outs, outRow{env: &evalEnv{cols: from.cols, params: params, row: r, vw: &vw, subCache: subCache}})
		}
	}

	// ORDER BY (stable sort, NULLs first ascending / last descending).
	if len(orderExprs) > 0 {
		for i := range outs {
			outs[i].keys = make([]Value, len(orderExprs))
			for j, e := range orderExprs {
				v, err := eval(e, outs[i].env)
				if err != nil {
					return nil, err
				}
				outs[i].keys[j] = v
			}
		}
		var sortErr error
		sort.SliceStable(outs, func(a, b int) bool {
			for j := range orderExprs {
				ka, kb := outs[a].keys[j], outs[b].keys[j]
				var c int
				switch {
				case ka.IsNull() && kb.IsNull():
					c = 0
				case ka.IsNull():
					c = -1
				case kb.IsNull():
					c = 1
				default:
					var err error
					c, err = Compare(ka, kb)
					if err != nil && sortErr == nil {
						sortErr = err
					}
				}
				if c == 0 {
					continue
				}
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// Projection.
	res := &Result{Columns: pr.names}
	for _, o := range outs {
		row := make([]Value, len(pr.exprs))
		for i, e := range pr.exprs {
			v, err := eval(e, o.env)
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}

	// DISTINCT.
	if sel.Distinct {
		seen := map[string]struct{}{}
		kept := res.Rows[:0:0]
		for _, r := range res.Rows {
			k := identityKey(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			kept = append(kept, r)
		}
		vw.trk.stage(sel, "distinct", len(res.Rows), len(kept))
		res.Rows = kept
	}

	// LIMIT / OFFSET.
	preLimit := len(res.Rows)
	if sel.Offset != nil {
		v, ok := constValue(sel.Offset, params)
		if !ok {
			return nil, errSyntax("OFFSET must be a constant expression")
		}
		n, ok := v.AsInt()
		if !ok || n < 0 {
			return nil, errSyntax("OFFSET must be a non-negative integer")
		}
		if int(n) >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[n:]
		}
	}
	if sel.Limit != nil {
		v, ok := constValue(sel.Limit, params)
		if !ok {
			return nil, errSyntax("LIMIT must be a constant expression")
		}
		n, ok := v.AsInt()
		if !ok || n < 0 {
			return nil, errSyntax("LIMIT must be a non-negative integer")
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	if sel.Limit != nil || sel.Offset != nil {
		vw.trk.stage(sel, "limit", preLimit, len(res.Rows))
	}
	vw.trk.sel(sel, len(res.Rows), selStart)
	res.RowsAffected = int64(len(res.Rows))
	return res, nil
}

// --- DML execution ---
//
// Writes run in three phases so no expression evaluates under a table
// latch (a subquery in a WHERE or SET re-enters the scan path):
//
//  1. snapshot: collect target rows and their visible values under the
//     shared latch;
//  2. evaluate: run WHERE/SET/VALUES expressions latch-free against the
//     snapshot copies;
//  3. apply: under the exclusive latch, writeCheck each target
//     (first-committer-wins conflict detection), check uniqueness, and
//     link pending versions into the chains.
//
// A row changed between snapshot and apply fails writeCheck and
// surfaces as a retryable serialization conflict.

func (vw view) execInsert(tx *txnState, ins *InsertStmt, params []Value) (*Result, error) {
	t, err := vw.db.table(ins.Table)
	if err != nil {
		return nil, err
	}
	cols := ins.Columns
	colPos := make([]int, 0, len(t.Columns))
	if len(cols) == 0 {
		for i := range t.Columns {
			colPos = append(colPos, i)
		}
	} else {
		seen := map[int]bool{}
		for _, c := range cols {
			p := t.colIndex(c)
			if p < 0 {
				return nil, errUndefinedColumn(c)
			}
			if seen[p] {
				return nil, errSyntax("column %q specified twice", c)
			}
			seen[p] = true
			colPos = append(colPos, p)
		}
	}
	env := &evalEnv{params: params, vw: &vw, subCache: map[*Subquery][][]Value{}}
	// Phase 2 (evaluate) runs first for INSERT: there are no targets to
	// snapshot, and evaluating every row before the latch keeps the
	// apply phase latch-free of expressions.
	planned := make([][]Value, 0, len(ins.Rows))
	for _, rowExprs := range ins.Rows {
		if len(rowExprs) != len(colPos) {
			return nil, &Error{Code: CodeCardinality,
				Message: fmt.Sprintf("INSERT has %d values for %d columns",
					len(rowExprs), len(colPos))}
		}
		vals := make([]Value, len(t.Columns))
		provided := make([]bool, len(t.Columns))
		for i, e := range rowExprs {
			if err := bindExpr(e, env); err != nil {
				return nil, err
			}
			v, err := eval(e, env)
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, t.Columns[colPos[i]].Type)
			if err != nil {
				return nil, err
			}
			vals[colPos[i]] = cv
			provided[colPos[i]] = true
		}
		for i := range t.Columns {
			if !provided[i] {
				if t.Columns[i].HasDefault {
					vals[i] = t.Columns[i].Default
				} else {
					vals[i] = Null
				}
			}
			if t.Columns[i].NotNull && vals[i].IsNull() {
				return nil, &Error{Code: CodeNotNullViolation,
					Message: fmt.Sprintf("null value in column %q violates NOT NULL",
						t.Columns[i].Name)}
			}
		}
		planned = append(planned, vals)
	}
	// Phase 3: apply.
	res := &Result{}
	applyStart := vw.trk.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, vals := range planned {
		for _, ix := range t.indexes {
			if !ix.Unique {
				continue
			}
			if err := t.checkUnique(ix, vals[ix.colPos], 0, tx.txn); err != nil {
				return nil, err
			}
		}
		row := t.appendRow(vals, tx.txn)
		tx.record(t, row, row.head, nil)
		res.RowsAffected++
		res.LastInsertID = row.id
	}
	t.rowsInserted.Add(res.RowsAffected)
	vw.trk.dml(ins, int(res.RowsAffected), applyStart)
	return res, nil
}

// dmlTarget is one snapshot-phase target: a row and the version its
// values were read from.
type dmlTarget struct {
	row  *storedRow
	vals []Value
}

// snapshotTargets collects the rows visible to the view that are
// candidates for a WHERE clause, releasing the latch before any
// expression runs.
func (vw view) snapshotTargets(t *Table, qual string, where Expr, params []Value, site any) []dmlTarget {
	start := vw.trk.now()
	t.mu.RLock()
	cands, plan := vw.candidateRows(t, qual, where, params)
	targets := make([]dmlTarget, 0, len(cands))
	for _, r := range cands {
		if v := r.visibleVersion(vw.txn, vw.snap); v != nil {
			targets = append(targets, dmlTarget{row: r, vals: v.vals})
		}
	}
	t.mu.RUnlock()
	noteScan(t, plan, len(targets))
	vw.trk.scan(site, plan, len(cands), len(targets), start)
	return targets
}

func (vw view) execUpdate(tx *txnState, up *UpdateStmt, params []Value) (*Result, error) {
	t, err := vw.db.table(up.Table)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(up.Alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	env := &evalEnv{params: params, vw: &vw, subCache: map[*Subquery][][]Value{}}
	for _, c := range t.Columns {
		env.cols = append(env.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	if up.Where != nil {
		if err := bindExpr(up.Where, env); err != nil {
			return nil, err
		}
	}
	setPos := make([]int, len(up.Set))
	for i, sc := range up.Set {
		p := t.colIndex(sc.Column)
		if p < 0 {
			return nil, errUndefinedColumn(sc.Column)
		}
		setPos[i] = p
		if err := bindExpr(sc.Value, env); err != nil {
			return nil, err
		}
	}
	// Phases 1+2: snapshot targets, then evaluate WHERE and SET latch-free.
	type plannedUpdate struct {
		row  *storedRow
		vals []Value
	}
	var plan []plannedUpdate
	targets := vw.snapshotTargets(t, qual, up.Where, params, up)
	for _, tgt := range targets {
		env.row = tgt.vals
		if up.Where != nil {
			v, err := eval(up.Where, env)
			if err != nil {
				return nil, err
			}
			truth, known := v.Truth()
			if !known || !truth {
				continue
			}
		}
		newVals := append([]Value(nil), tgt.vals...)
		for i, sc := range up.Set {
			v, err := eval(sc.Value, env)
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, t.Columns[setPos[i]].Type)
			if err != nil {
				return nil, err
			}
			if t.Columns[setPos[i]].NotNull && cv.IsNull() {
				return nil, &Error{Code: CodeNotNullViolation,
					Message: fmt.Sprintf("null value in column %q violates NOT NULL",
						t.Columns[setPos[i]].Name)}
			}
			newVals[setPos[i]] = cv
		}
		plan = append(plan, plannedUpdate{row: tgt.row, vals: newVals})
	}
	vw.trk.stage(up, "filter", len(targets), len(plan))
	// Phase 3: apply.
	res := &Result{}
	applyStart := vw.trk.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range plan {
		cur, err := t.writeCheck(p.row, tx.txn, vw.snap)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			continue // no longer a target (e.g. deleted by this txn)
		}
		for _, ix := range t.indexes {
			if !ix.Unique {
				continue
			}
			if IdentityEqual(p.vals[ix.colPos], cur.vals[ix.colPos]) {
				continue // key unchanged; the row keeps its own claim
			}
			if err := t.checkUnique(ix, p.vals[ix.colPos], p.row.id, tx.txn); err != nil {
				return nil, err
			}
		}
		nv := &rowVersion{vals: p.vals, prev: p.row.head}
		nv.meta.InitPending(tx.txn)
		cur.meta.SetDeleter(tx.txn)
		p.row.head = nv
		for _, ix := range t.indexes {
			ix.addVersion(p.row.id, nv)
		}
		tx.record(t, p.row, nv, cur)
		res.RowsAffected++
	}
	t.rowsUpdated.Add(res.RowsAffected)
	vw.trk.dml(up, int(res.RowsAffected), applyStart)
	return res, nil
}

func (vw view) execDelete(tx *txnState, del *DeleteStmt, params []Value) (*Result, error) {
	t, err := vw.db.table(del.Table)
	if err != nil {
		return nil, err
	}
	qual := strings.ToLower(del.Alias)
	if qual == "" {
		qual = strings.ToLower(t.Name)
	}
	env := &evalEnv{params: params, vw: &vw, subCache: map[*Subquery][][]Value{}}
	for _, c := range t.Columns {
		env.cols = append(env.cols, envCol{tbl: qual, name: strings.ToLower(c.Name)})
	}
	if del.Where != nil {
		if err := bindExpr(del.Where, env); err != nil {
			return nil, err
		}
	}
	var rows []*storedRow
	targets := vw.snapshotTargets(t, qual, del.Where, params, del)
	for _, tgt := range targets {
		if del.Where != nil {
			env.row = tgt.vals
			v, err := eval(del.Where, env)
			if err != nil {
				return nil, err
			}
			truth, known := v.Truth()
			if !known || !truth {
				continue
			}
		}
		rows = append(rows, tgt.row)
	}
	vw.trk.stage(del, "filter", len(targets), len(rows))
	res := &Result{}
	applyStart := vw.trk.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, row := range rows {
		cur, err := t.writeCheck(row, tx.txn, vw.snap)
		if err != nil {
			return nil, err
		}
		if cur == nil {
			continue
		}
		cur.meta.SetDeleter(tx.txn)
		tx.record(t, row, nil, cur)
		res.RowsAffected++
	}
	t.rowsDeleted.Add(res.RowsAffected)
	vw.trk.dml(del, int(res.RowsAffected), applyStart)
	return res, nil
}

// --- DDL execution ---
//
// DDL runs under the exclusive catalog lock and is not snapshot
// isolated: catalog changes are visible to every session immediately
// and are undone structurally on rollback. Statements that rewrite row
// storage (ALTER TABLE) or retire it (DROP TABLE) additionally require
// that no other transaction holds pending versions on the table,
// surfacing a retryable conflict otherwise — a committed version chain
// can be rewritten in place, but an uncommitted writer's versions
// cannot be restitched safely.

// guardPending enforces the rule above. Caller holds t.mu exclusively.
func guardPending(t *Table, tx *txnState, what string) error {
	var own int64
	if tx != nil {
		own = tx.pendingOn(t)
	}
	if t.pending.Load() != own {
		return errConflict(fmt.Sprintf(
			"cannot %s table %q: concurrent transactions have uncommitted changes", what, t.Name))
	}
	return nil
}

func (db *Database) execCreateTable(tx *txnState, ct *CreateTableStmt) (*Result, error) {
	key := strings.ToLower(ct.Table)
	if _, exists := db.tables[key]; exists {
		if ct.IfNotExists {
			return &Result{}, nil
		}
		return nil, &Error{Code: CodeDuplicateTable,
			Message: fmt.Sprintf("table %q already exists", ct.Table)}
	}
	t := &Table{Name: ct.Table, byID: map[int64]*storedRow{}}
	seen := map[string]bool{}
	var pkCol string
	for _, cd := range ct.Columns {
		lc := strings.ToLower(cd.Name)
		if seen[lc] {
			return nil, errSyntax("duplicate column name %q", cd.Name)
		}
		seen[lc] = true
		col := Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull, PrimaryKey: cd.PrimaryKey}
		if cd.Default != nil {
			v, err := eval(cd.Default, &evalEnv{})
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, cd.Type)
			if err != nil {
				return nil, err
			}
			col.Default = cv
			col.HasDefault = true
		}
		if cd.PrimaryKey {
			if pkCol != "" {
				return nil, errSyntax("multiple PRIMARY KEY columns are not supported")
			}
			pkCol = cd.Name
		}
		t.Columns = append(t.Columns, col)
	}
	db.tables[key] = t
	tx.logDDL(undoRec{kind: undoCreateTable, table: t.Name})
	if pkCol != "" {
		ixName := strings.ToLower(ct.Table) + "_pkey"
		ix, err := buildIndex(t, ixName, pkCol, true)
		if err != nil {
			return nil, err
		}
		t.indexes = append(t.indexes, ix)
		db.indexes[strings.ToLower(ixName)] = ix
		tx.logDDL(undoRec{kind: undoCreateIndex, index: ixName})
	}
	return &Result{}, nil
}

func (db *Database) execDropTable(tx *txnState, dt *DropTableStmt) (*Result, error) {
	key := strings.ToLower(dt.Table)
	t, exists := db.tables[key]
	if !exists {
		if dt.IfExists {
			return &Result{}, nil
		}
		return nil, errUndefinedTable(dt.Table)
	}
	t.mu.Lock()
	err := guardPending(t, tx, "drop")
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	var dropped []*Index
	for name, ix := range db.indexes {
		if strings.EqualFold(ix.Table, t.Name) {
			dropped = append(dropped, ix)
			delete(db.indexes, name)
		}
	}
	delete(db.tables, key)
	tx.logDDL(undoRec{kind: undoDropTable, table: t.Name, droppedTable: t, droppedIndexes: dropped})
	return &Result{}, nil
}

func (db *Database) execCreateIndex(tx *txnState, ci *CreateIndexStmt) (*Result, error) {
	key := strings.ToLower(ci.Name)
	if _, exists := db.indexes[key]; exists {
		return nil, &Error{Code: CodeDuplicateIndex,
			Message: fmt.Sprintf("index %q already exists", ci.Name)}
	}
	t, err := db.table(ci.Table)
	if err != nil {
		return nil, err
	}
	// The exclusive latch keeps a racing commit's chain cleanup out of
	// the build.
	t.mu.Lock()
	ix, err := buildIndex(t, ci.Name, ci.Column, ci.Unique)
	if err == nil {
		t.indexes = append(t.indexes, ix)
	}
	t.mu.Unlock()
	if err != nil {
		return nil, err
	}
	db.indexes[key] = ix
	tx.logDDL(undoRec{kind: undoCreateIndex, index: ci.Name})
	// Index DDL never changes results (no vt bump) but does change access
	// paths, which cached plans' cost decisions depend on.
	db.bumpSchema(ci.Table)
	return &Result{}, nil
}

func (db *Database) execDropIndex(tx *txnState, di *DropIndexStmt) (*Result, error) {
	key := strings.ToLower(di.Name)
	ix, exists := db.indexes[key]
	if !exists {
		if di.IfExists {
			return &Result{}, nil
		}
		return nil, &Error{Code: CodeUndefinedIndex,
			Message: fmt.Sprintf("index %q does not exist", di.Name)}
	}
	delete(db.indexes, key)
	if t, err := db.table(ix.Table); err == nil {
		t.mu.Lock()
		for i, tix := range t.indexes {
			if tix == ix {
				t.indexes = append(t.indexes[:i:i], t.indexes[i+1:]...)
				break
			}
		}
		t.mu.Unlock()
	}
	tx.logDDL(undoRec{kind: undoDropIndex, index: ix.Name, droppedIndex: ix})
	db.bumpSchema(ix.Table)
	return &Result{}, nil
}
