package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// Database is one named in-memory database: a catalog of tables and
// indexes guarded by a readers-writer lock. SELECT statements take the
// read lock; DML, DDL, and explicit transactions take the write lock.
// This matches the CGI deployment model of the paper, where every request
// is a short-lived process whose statements serialise at the DBMS.
type Database struct {
	Name string

	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index

	// noIndexScan disables index access paths; used by the A5 ablation to
	// measure full-scan cost on the same data.
	noIndexScan bool

	// nowFn supplies the clock for NOW()/CURDATE()/CURTIME(). Defaults
	// to time.Now; tests inject a fixed clock for determinism.
	nowFn func() time.Time

	// vt holds the per-table version counters behind result-cache
	// invalidation; see version.go.
	vt versionTable
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		Name:    name,
		tables:  map[string]*Table{},
		indexes: map[string]*Index{},
	}
}

// SetClock overrides the clock behind NOW(), CURDATE(), and CURTIME().
// Pass nil to restore the real clock.
func (db *Database) SetClock(now func() time.Time) {
	db.mu.Lock()
	db.nowFn = now
	db.mu.Unlock()
}

// now returns the database clock's current time in UTC.
func (db *Database) now() time.Time {
	if db.nowFn != nil {
		return db.nowFn().UTC()
	}
	return time.Now().UTC()
}

// SetIndexScansEnabled toggles index access paths (default enabled).
func (db *Database) SetIndexScansEnabled(on bool) {
	db.mu.Lock()
	db.noIndexScan = !on
	db.mu.Unlock()
}

// table looks up a table by name, case-insensitively.
func (db *Database) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, errUndefinedTable(name)
	}
	return t, nil
}

// Table returns the named table's metadata, or an error if absent. The
// returned Table must be treated as read-only by callers.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.table(name)
}

// TableNames lists the catalog's table names in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sortStrings(names)
	return names
}

// IndexNames lists the catalog's index names in sorted order.
func (db *Database) IndexNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.indexes))
	for _, ix := range db.indexes {
		names = append(names, ix.Name)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// --- undo log ---

type undoKind int

const (
	undoInsert undoKind = iota
	undoUpdate
	undoDelete
	undoCreateTable
	undoDropTable
	undoCreateIndex
	undoDropIndex
	undoAlterTable
)

type undoRec struct {
	kind           undoKind
	table          string
	rowID          int64
	oldVals        []Value
	index          string
	droppedTable   *Table
	droppedIndex   *Index
	droppedIndexes []*Index
	alterOldName   string // pre-ALTER table name (RENAME undo)
}

// Session is one client connection to a Database. Sessions are not safe
// for concurrent use; each gateway request (each CGI process in the
// paper's model) owns one session. In auto-commit mode every statement is
// its own transaction. BeginTxn switches the session to explicit mode:
// the session holds the database write lock until Commit or Rollback, so
// a macro executed in "single transaction" mode is fully isolated.
type Session struct {
	db     *Database
	inTxn  bool
	undo   []undoRec
	closed bool
}

// NewSession opens a session on db.
func NewSession(db *Database) *Session {
	return &Session{db: db}
}

// Close releases the session, rolling back any open transaction.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.inTxn {
		return s.Rollback()
	}
	return nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.inTxn }

func (s *Session) logUndo(r undoRec) {
	if s.inTxn {
		s.undo = append(s.undo, r)
	}
}

// BeginTxn starts an explicit transaction, taking the database write lock.
func (s *Session) BeginTxn() error {
	if s.closed {
		return &Error{Code: CodeInvalidTxnState, Message: "session is closed"}
	}
	if s.inTxn {
		return &Error{Code: CodeInvalidTxnState, Message: "transaction already in progress"}
	}
	s.db.mu.Lock()
	s.inTxn = true
	s.undo = s.undo[:0]
	return nil
}

// Commit commits the explicit transaction and releases the write lock.
func (s *Session) Commit() error {
	if !s.inTxn {
		return &Error{Code: CodeInvalidTxnState, Message: "no transaction in progress"}
	}
	s.undo = s.undo[:0]
	s.inTxn = false
	s.db.mu.Unlock()
	return nil
}

// Rollback undoes every statement executed since BeginTxn, in reverse
// order, then releases the write lock.
func (s *Session) Rollback() error {
	if !s.inTxn {
		return &Error{Code: CodeInvalidTxnState, Message: "no transaction in progress"}
	}
	db := s.db
	for i := len(s.undo) - 1; i >= 0; i-- {
		r := s.undo[i]
		switch r.kind {
		case undoInsert:
			if t, err := db.table(r.table); err == nil {
				t.deleteRowByID(r.rowID)
			}
		case undoUpdate:
			if t, err := db.table(r.table); err == nil {
				if row, ok := t.byID[r.rowID]; ok {
					for _, ix := range t.indexes {
						ix.remove(row)
					}
					row.vals = r.oldVals
					for _, ix := range t.indexes {
						ix.add(row)
					}
				}
			}
		case undoDelete:
			if t, err := db.table(r.table); err == nil {
				t.reinsertRow(r.rowID, r.oldVals)
			}
		case undoCreateTable:
			delete(db.tables, strings.ToLower(r.table))
		case undoDropTable:
			db.tables[strings.ToLower(r.table)] = r.droppedTable
			for _, ix := range r.droppedIndexes {
				db.indexes[strings.ToLower(ix.Name)] = ix
			}
		case undoCreateIndex:
			if ix, ok := db.indexes[strings.ToLower(r.index)]; ok {
				delete(db.indexes, strings.ToLower(r.index))
				if t, err := db.table(ix.Table); err == nil {
					for j, tix := range t.indexes {
						if tix == ix {
							t.indexes = append(t.indexes[:j:j], t.indexes[j+1:]...)
							break
						}
					}
				}
			}
		case undoDropIndex:
			ix := r.droppedIndex
			db.indexes[strings.ToLower(ix.Name)] = ix
			if t, err := db.table(ix.Table); err == nil {
				t.indexes = append(t.indexes, ix)
			}
		case undoAlterTable:
			// Replace the altered table with its pre-image snapshot,
			// undoing any rename and re-pointing the index catalog at the
			// snapshot's rebuilt indexes.
			delete(db.tables, strings.ToLower(r.table))
			snap := r.droppedTable
			db.tables[strings.ToLower(r.alterOldName)] = snap
			for _, ix := range snap.indexes {
				db.indexes[strings.ToLower(ix.Name)] = ix
			}
		}
	}
	// Bump every table the transaction touched once more: the undo just
	// rewrote their contents, and result caches must not trust any entry
	// recorded against the aborted intermediate state.
	var touched []string
	seen := map[string]bool{}
	for _, r := range s.undo {
		for _, name := range []string{r.table, r.alterOldName} {
			if name != "" && !seen[strings.ToLower(name)] {
				seen[strings.ToLower(name)] = true
				touched = append(touched, name)
			}
		}
	}
	db.bumpVersions(touched...)
	s.undo = s.undo[:0]
	s.inTxn = false
	s.db.mu.Unlock()
	return nil
}

// Exec parses and executes one SQL statement, returning its result.
// Params bind to ? placeholders in order.
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	if s.closed {
		return nil, &Error{Code: CodeInvalidTxnState, Message: "session is closed"}
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return s.ExecStmt(st, params...)
}

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt, params ...Value) (*Result, error) {
	switch x := st.(type) {
	case *BeginStmt:
		if err := s.BeginTxn(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CommitStmt:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *RollbackStmt:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *SelectStmt:
		lockStart := obsNow()
		if !s.inTxn {
			s.db.mu.RLock()
			defer s.db.mu.RUnlock()
		}
		observeLockWait(lockStart)
		execStart := obsNow()
		res, err := s.db.execSelect(x, params)
		observeExec(mExecSelect, execStart)
		if err == nil {
			observeRows(res)
		}
		return res, err
	case *InsertStmt:
		return s.execWrite(func() (*Result, error) { return s.execInsert(x, params) }, x.Table)
	case *UpdateStmt:
		return s.execWrite(func() (*Result, error) { return s.execUpdate(x, params) }, x.Table)
	case *DeleteStmt:
		return s.execWrite(func() (*Result, error) { return s.execDelete(x, params) }, x.Table)
	case *CreateTableStmt:
		return s.execWrite(func() (*Result, error) { return s.execCreateTable(x) }, x.Table)
	case *AlterTableStmt:
		// A rename changes what two names resolve to; bump both.
		return s.execWrite(func() (*Result, error) { return s.execAlterTable(x) }, x.Table, x.RenameTo)
	case *DropTableStmt:
		return s.execWrite(func() (*Result, error) { return s.execDropTable(x) }, x.Table)
	case *CreateIndexStmt:
		// Index DDL changes access paths, never results: no version bump.
		return s.withWriteLock(func() (*Result, error) { return s.execCreateIndex(x) })
	case *DropIndexStmt:
		return s.withWriteLock(func() (*Result, error) { return s.execDropIndex(x) })
	default:
		return nil, &Error{Code: CodeFeature,
			Message: fmt.Sprintf("unsupported statement type %T", st)}
	}
}

func (s *Session) withWriteLock(fn func() (*Result, error)) (*Result, error) {
	lockStart := obsNow()
	if !s.inTxn {
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
	}
	observeLockWait(lockStart)
	execStart := obsNow()
	res, err := fn()
	observeExec(mExecDDL, execStart)
	return res, err
}

// execWrite runs a data-changing statement under the write lock and bumps
// the version of every table it names. The bump is unconditional — a
// failed statement may still have left partial effects in auto-commit
// mode — and the deferred ordering places it before the lock release, so
// any session that can observe the write also observes the new version.
func (s *Session) execWrite(fn func() (*Result, error), tables ...string) (*Result, error) {
	lockStart := obsNow()
	if !s.inTxn {
		s.db.mu.Lock()
		defer s.db.mu.Unlock()
	}
	observeLockWait(lockStart)
	defer s.db.bumpVersions(tables...)
	execStart := obsNow()
	res, err := fn()
	observeExec(mExecWrite, execStart)
	return res, err
}

// Query executes a SELECT (or any statement) and returns a row cursor.
func (s *Session) Query(sql string, params ...Value) (*Rows, error) {
	res, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	return &Rows{res: res, pos: -1}, nil
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error. It returns the number of statements executed.
func (s *Session) ExecScript(script string) (int, error) {
	stmts, err := ParseAll(script)
	if err != nil {
		return 0, err
	}
	for i, st := range stmts {
		if _, err := s.ExecStmt(st); err != nil {
			return i, err
		}
	}
	return len(stmts), nil
}

// Rows is a forward-only cursor over a materialised result set — the
// row-at-a-time fetch interface the macro engine's %ROW block consumes.
type Rows struct {
	res *Result
	pos int
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.res.Columns }

// Next advances to the next row, returning false at the end.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.res.Rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row. Next must have returned true.
func (r *Rows) Row() []Value { return r.res.Rows[r.pos] }

// RowCount returns the total number of rows in the result.
func (r *Rows) RowCount() int { return len(r.res.Rows) }

// Close releases the cursor (a no-op for materialised results; present so
// callers follow the usual acquire/release discipline).
func (r *Rows) Close() error { return nil }
