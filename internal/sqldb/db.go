package sqldb

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"db2www/internal/sqldb/mvcc"
)

// Database is one named in-memory database: a catalog of tables and
// indexes plus the MVCC transaction manager that orders commits.
//
// Concurrency model (snapshot isolation):
//
//   - db.mu guards only the catalog maps. Every statement holds it
//     shared for its duration; DDL holds it exclusive. Readers and
//     writers therefore never block each other — only DDL excludes.
//   - Row data lives in per-table version chains (see catalog.go).
//     Statements latch a table (Table.mu) only for short scan or apply
//     phases, never across expression evaluation.
//   - Every statement resolves rows against a snapshot watermark taken
//     from the mvcc.Manager. Writes create pending versions visible
//     only to their transaction; commit stamps them with one new commit
//     sequence and bumps the per-table version counters (version.go)
//     inside the same critical section, preserving the result-cache
//     invalidation contract.
//   - Write-write conflicts resolve first-committer-wins: the later
//     writer gets a retryable serialization failure (SQLSTATE 40001).
//     Auto-commit statements retry internally; explicit transactions
//     surface the error through sqldriver.
//
// Lock order: serialMu → db.mu → Table.mu; db.mu → vt.mu. The mvcc
// manager's internal mutex nests under everything and takes nothing.
type Database struct {
	Name string

	mu      sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index

	// noIndexScan disables index access paths; used by the A5 ablation to
	// measure full-scan cost on the same data.
	noIndexScan bool

	// nowFn supplies the clock for NOW()/CURDATE()/CURTIME(). Defaults
	// to time.Now; tests inject a fixed clock for determinism.
	nowFn func() time.Time

	// vt holds the per-table version counters behind result-cache
	// invalidation; see version.go.
	vt versionTable

	// sv holds per-table *schema* versions, bumped only by DDL (including
	// index DDL, which changes access paths). Cached plans validate
	// against these rather than vt: data changes never invalidate a
	// parsed statement. schemaEpoch invalidates everything at once when a
	// rollback replays DDL undo.
	sv          versionTable
	schemaEpoch atomic.Uint64

	// plans caches parsed statement shapes by digest; see plan.go.
	plans *PlanCache

	// noPlanner disables the cost-based planner (index selection among
	// candidates, predicate pushdown, join reordering), reverting to the
	// legacy first-match access path and declaration-order joins. Guarded
	// by db.mu like noIndexScan; used by the A11 ablation.
	noPlanner bool

	// mvcc orders commits and tracks live snapshots.
	mvcc *mvcc.Manager

	// serial re-enables the pre-MVCC global-write-lock discipline via
	// serialMu: explicit transactions and auto-commit writes take it
	// exclusive (for the whole transaction, resp. statement), reads take
	// it shared. Kept as the A9 ablation baseline and an escape hatch
	// (gatewayd -isolation=serial).
	serial   atomic.Bool
	serialMu sync.RWMutex

	conflicts   atomic.Uint64
	vacuumRows  atomic.Uint64
	stmtRetries atomic.Uint64

	// tableRetries counts auto-commit conflict retries per target table
	// (lower-cased name -> *atomic.Uint64): the MVCC health signal that
	// says *where* first-committer-wins races concentrate.
	tableRetries sync.Map

	// vacuum sweep accounting: sweeps run, versions examined, versions
	// reclaimed (vacuumRows above). reclaimed/scanned is the vacuum's
	// efficiency — low values mean sweeps are mostly wasted walks.
	vacuumSweeps  atomic.Uint64
	vacuumScanned atomic.Uint64

	// stmts receives per-digest execution stats; defaults to the shared
	// Statements registry. Tests swap in a private one.
	stmts *StatementStats
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		Name:    name,
		tables:  map[string]*Table{},
		indexes: map[string]*Index{},
		mvcc:    mvcc.NewManager(),
		stmts:   Statements,
		plans:   NewPlanCache(0),
	}
}

// StatementStats returns the registry this database records statement
// executions into (the shared Statements registry unless overridden).
func (db *Database) StatementStats() *StatementStats { return db.stmts }

// SetStatementStats redirects statement recording to s (nil disables).
// Tests use it to observe a single database in isolation.
func (db *Database) SetStatementStats(s *StatementStats) { db.stmts = s }

// NoteStatementCacheHit records a result-cache hit for sql's digest: an
// execution the engine never ran. The query cache calls this so the
// statements table shows cached and executed traffic side by side.
func (db *Database) NoteStatementCacheHit(sql string) {
	if db.stmts == nil || !obsEnabled() {
		return
	}
	digest, norm := DigestSQL(sql)
	db.stmts.NoteCacheHit(digest, norm, "select")
}

// noteTableRetries bumps the per-table conflict-retry counters after an
// auto-commit statement loses a first-committer-wins race.
func (db *Database) noteTableRetries(targets []string) {
	for _, name := range targets {
		ln := strings.ToLower(name)
		if ln == "" {
			continue
		}
		v, _ := db.tableRetries.LoadOrStore(ln, new(atomic.Uint64))
		v.(*atomic.Uint64).Add(1)
	}
}

// SetClock overrides the clock behind NOW(), CURDATE(), and CURTIME().
// Pass nil to restore the real clock.
func (db *Database) SetClock(now func() time.Time) {
	db.mu.Lock()
	db.nowFn = now
	db.mu.Unlock()
}

// now returns the database clock's current time in UTC.
func (db *Database) now() time.Time {
	if db.nowFn != nil {
		return db.nowFn().UTC()
	}
	return time.Now().UTC()
}

// SetIndexScansEnabled toggles index access paths (default enabled).
func (db *Database) SetIndexScansEnabled(on bool) {
	db.mu.Lock()
	db.noIndexScan = !on
	db.mu.Unlock()
}

// SetSerialMode toggles the global-write-lock baseline: when on, writes
// and explicit transactions serialise behind one lock exactly as the
// pre-MVCC engine did. Used by the A9 ablation and -isolation=serial.
func (db *Database) SetSerialMode(on bool) { db.serial.Store(on) }

// SerialMode reports whether the global-write-lock baseline is active.
func (db *Database) SerialMode() bool { return db.serial.Load() }

// table looks up a table by name, case-insensitively.
func (db *Database) table(name string) (*Table, error) {
	t, ok := db.tables[strings.ToLower(name)]
	if !ok {
		return nil, errUndefinedTable(name)
	}
	return t, nil
}

// Table returns the named table's metadata, or an error if absent. The
// returned Table must be treated as read-only by callers.
func (db *Database) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.table(name)
}

// TableNames lists the catalog's table names in sorted order.
func (db *Database) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for _, t := range db.tables {
		names = append(names, t.Name)
	}
	sortStrings(names)
	return names
}

// IndexNames lists the catalog's index names in sorted order.
func (db *Database) IndexNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.indexes))
	for _, ix := range db.indexes {
		names = append(names, ix.Name)
	}
	sortStrings(names)
	return names
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TxnStats is a point-in-time summary of transaction activity, shown on
// the gateway's /server-status "Transactions" section.
type TxnStats struct {
	ActiveSnapshots   int           // distinct live snapshots (open txns + running statements)
	OldestSnapshot    uint64        // vacuum watermark
	OldestSnapshotAge time.Duration // how long the oldest live snapshot has been held (0 when none)
	CommitSeq         uint64        // last published commit sequence
	Commits           uint64
	Rollbacks         uint64 // aborts excluding conflicts
	Conflicts         uint64 // first-committer-wins losers
	ConflictRetries   uint64 // auto-commit statements replayed after losing a race
	VacuumedRows      uint64 // row versions reclaimed
	VacuumSweeps      uint64 // background/manual Vacuum() passes
	VacuumScannedRows uint64 // row versions examined by those passes
}

// TxnStats returns current transaction counters and watermarks.
func (db *Database) TxnStats() TxnStats {
	conflicts := db.conflicts.Load()
	return TxnStats{
		ActiveSnapshots:   db.mvcc.ActiveSnapshots(),
		OldestSnapshot:    db.mvcc.OldestSnapshot(),
		OldestSnapshotAge: db.mvcc.OldestSnapshotAge(),
		CommitSeq:         db.mvcc.CommitSeq(),
		Commits:           db.mvcc.Commits(),
		Rollbacks:         db.mvcc.Aborts() - conflicts,
		Conflicts:         conflicts,
		ConflictRetries:   db.stmtRetries.Load(),
		VacuumedRows:      db.vacuumRows.Load(),
		VacuumSweeps:      db.vacuumSweeps.Load(),
		VacuumScannedRows: db.vacuumScanned.Load(),
	}
}

// view is one statement's read context: the database, the transaction
// (nil for plain snapshot reads), and the snapshot watermark rows
// resolve against. All read-path executors hang off view so subqueries
// inherit the statement's snapshot.
type view struct {
	db   *Database
	txn  *mvcc.Txn
	snap uint64

	// trk is non-nil only while an EXPLAIN ANALYZE target executes; the
	// executor posts per-operator counters to it (see explain.go).
	trk *execTracker
}

// --- transaction state ---

// writeRec is one row-level effect of a transaction: a created version,
// a delete intent on an existing version, or (for UPDATE) both.
type writeRec struct {
	t       *Table
	row     *storedRow
	created *rowVersion
	deleted *rowVersion
}

// txnState carries everything needed to commit or roll back one
// transaction: its mvcc identity, the row-version write set, and the
// undo log for DDL (which is not snapshot-isolated: catalog changes
// apply immediately and are undone structurally on rollback).
type txnState struct {
	txn     *mvcc.Txn
	writes  []writeRec
	ddlUndo []undoRec
	ddlBump []string // tables whose results DDL changed; re-bumped at commit/rollback
	// conflicted records that a statement hit a first-committer-wins
	// conflict, so the session's eventual Rollback counts as a conflict
	// abort rather than a voluntary one.
	conflicted bool
}

// record appends one row effect and adjusts the table's pending-version
// count. Caller holds t.mu exclusively (the same latch ALTER TABLE's
// pending guard reads under), so the count can't tear against DDL.
func (tx *txnState) record(t *Table, row *storedRow, created, deleted *rowVersion) {
	tx.writes = append(tx.writes, writeRec{t: t, row: row, created: created, deleted: deleted})
	var n int64
	if created != nil {
		n++
	}
	if deleted != nil {
		n++
	}
	t.pending.Add(n)
}

// pendingOn counts this transaction's pending units on t; ALTER TABLE
// may proceed only when the table's total pending count equals it.
func (tx *txnState) pendingOn(t *Table) int64 {
	var n int64
	for i := range tx.writes {
		w := &tx.writes[i]
		if w.t != t {
			continue
		}
		if w.created != nil {
			n++
		}
		if w.deleted != nil {
			n++
		}
	}
	return n
}

func (tx *txnState) logDDL(r undoRec) {
	if tx != nil {
		tx.ddlUndo = append(tx.ddlUndo, r)
	}
}

// bumpNames returns the lower-cased names of every table this
// transaction wrote (write set plus DDL), deduplicated. Tables only
// read never appear: a rollback must not invalidate cache entries for
// them.
func (tx *txnState) bumpNames() []string {
	seen := map[string]bool{}
	var names []string
	add := func(n string) {
		ln := strings.ToLower(n)
		if ln != "" && !seen[ln] {
			seen[ln] = true
			names = append(names, ln)
		}
	}
	for i := range tx.writes {
		add(tx.writes[i].t.Name)
	}
	for _, n := range tx.ddlBump {
		add(n)
	}
	return names
}

// begin starts a transaction state at a fresh snapshot.
func (db *Database) begin() *txnState {
	return &txnState{txn: db.mvcc.Begin()}
}

// commitTxn commits: it stamps every written version with one new
// commit sequence, bumps the written tables' version counters, and
// publishes the sequence — all inside vt.mu, the mutex TableVersions
// readers take. A result cache that brackets a computation with
// TableVersions therefore can never pair this commit's data with
// pre-commit versions or vice versa.
func (db *Database) commitTxn(tx *txnState) {
	names := tx.bumpNames()
	if len(tx.writes) == 0 {
		if len(names) > 0 {
			db.bumpVersions(names...)
		}
		db.mvcc.Finish(tx.txn, true)
		mTxnCommit.Add(1)
		return
	}
	db.vt.mu.Lock()
	seq := db.mvcc.NextSeq()
	for i := range tx.writes {
		w := &tx.writes[i]
		if w.created != nil {
			w.created.meta.StampBegin(seq)
		}
		if w.deleted != nil {
			w.deleted.meta.StampEnd(seq)
		}
	}
	db.bumpLocked(names)
	db.mvcc.Publish(seq)
	db.vt.mu.Unlock()
	db.mvcc.Finish(tx.txn, true)
	mTxnCommit.Add(1)
	db.settleCommitted(tx)
}

// rollbackTxn aborts: one status store hides every pending version and
// voids every delete intent; the physical garbage is then unlinked.
// DDL undoes structurally under the exclusive catalog lock. Written
// tables get a conservative version bump (DDL rewrote them; pure DML
// garbage costs at most a cache miss) — tables only read do not.
func (db *Database) rollbackTxn(tx *txnState, conflict bool) {
	db.mvcc.Finish(tx.txn, false)
	db.purgeWrites(tx, 0)
	if len(tx.ddlUndo) > 0 {
		db.mu.Lock()
		db.replayDDLUndo(tx.ddlUndo)
		db.mu.Unlock()
		// The undo replay may restore catalog state no single table name
		// captures (renames, dropped indexes); invalidate every cached plan.
		db.bumpSchemaAll()
	}
	if names := tx.bumpNames(); len(names) > 0 {
		db.bumpVersions(names...)
	}
	if conflict {
		db.conflicts.Add(1)
		mTxnConflict.Add(1)
	} else {
		mTxnRollback.Add(1)
	}
}

// abortStmt physically undoes the write set's tail (one failed
// statement inside a live transaction), keeping statements atomic.
func (db *Database) abortStmt(tx *txnState, mark int) {
	db.purgeWrites(tx, mark)
	tx.writes = tx.writes[:mark]
}

// purgeWrites unlinks the row versions of tx.writes[from:]: created
// versions leave the chains (and index postings), delete intents are
// voided. Grouped per table so each latch is taken once.
func (db *Database) purgeWrites(tx *txnState, from int) {
	if from >= len(tx.writes) {
		return
	}
	byTable := map[*Table][]int{}
	var order []*Table
	for i := from; i < len(tx.writes); i++ {
		t := tx.writes[i].t
		if _, ok := byTable[t]; !ok {
			order = append(order, t)
		}
		byTable[t] = append(byTable[t], i)
	}
	for _, t := range order {
		t.mu.Lock()
		dead := map[int64]bool{}
		for _, i := range byTable[t] {
			w := &tx.writes[i]
			if w.deleted != nil {
				// CAS: after the abort status store another transaction may
				// have legitimately claimed the version's deleter slot.
				w.deleted.meta.ClearDeleterIf(tx.txn)
				t.pending.Add(-1)
			}
			if w.created != nil {
				if w.row.unlink(w.created) {
					for _, ix := range t.indexes {
						ix.removeVersion(w.row.id, w.created)
					}
				}
				t.pending.Add(-1)
				if w.row.head == nil {
					dead[w.row.id] = true
				}
			}
		}
		t.removeRows(dead)
		t.mu.Unlock()
	}
}

// settleCommitted releases the committed write set's pending counts and
// opportunistically prunes the written rows' chains below the current
// watermark, so hot rows don't wait for the background vacuum.
func (db *Database) settleCommitted(tx *txnState) {
	wm := db.mvcc.OldestSnapshot()
	byTable := map[*Table][]int{}
	var order []*Table
	for i := range tx.writes {
		t := tx.writes[i].t
		if _, ok := byTable[t]; !ok {
			order = append(order, t)
		}
		byTable[t] = append(byTable[t], i)
	}
	pruned := 0
	for _, t := range order {
		t.mu.Lock()
		dead := map[int64]bool{}
		seen := map[*storedRow]bool{}
		for _, i := range byTable[t] {
			w := &tx.writes[i]
			if w.created != nil {
				t.pending.Add(-1)
			}
			if w.deleted != nil {
				t.pending.Add(-1)
			}
			if seen[w.row] {
				continue
			}
			seen[w.row] = true
			pruned += db.pruneChain(t, w.row, wm)
			if w.row.head == nil {
				dead[w.row.id] = true
			}
		}
		t.removeRows(dead)
		t.mu.Unlock()
	}
	if pruned > 0 {
		db.vacuumRows.Add(uint64(pruned))
		mVacuumRows.Add(int64(pruned))
	}
}

// replayDDLUndo reverses a transaction's catalog changes, newest first.
// Caller holds db.mu exclusively.
func (db *Database) replayDDLUndo(undo []undoRec) {
	for i := len(undo) - 1; i >= 0; i-- {
		r := undo[i]
		switch r.kind {
		case undoCreateTable:
			delete(db.tables, strings.ToLower(r.table))
		case undoDropTable:
			db.tables[strings.ToLower(r.table)] = r.droppedTable
			for _, ix := range r.droppedIndexes {
				db.indexes[strings.ToLower(ix.Name)] = ix
			}
		case undoCreateIndex:
			if ix, ok := db.indexes[strings.ToLower(r.index)]; ok {
				delete(db.indexes, strings.ToLower(r.index))
				if t, err := db.table(ix.Table); err == nil {
					for j, tix := range t.indexes {
						if tix == ix {
							t.indexes = append(t.indexes[:j:j], t.indexes[j+1:]...)
							break
						}
					}
				}
			}
		case undoDropIndex:
			ix := r.droppedIndex
			db.indexes[strings.ToLower(ix.Name)] = ix
			if t, err := db.table(ix.Table); err == nil {
				t.indexes = append(t.indexes, ix)
			}
		case undoAlterTable:
			// Replace the altered table with its pre-image snapshot,
			// undoing any rename and re-pointing the index catalog at the
			// snapshot's rebuilt indexes.
			delete(db.tables, strings.ToLower(r.table))
			snap := r.droppedTable
			db.tables[strings.ToLower(r.alterOldName)] = snap
			for _, ix := range snap.indexes {
				db.indexes[strings.ToLower(ix.Name)] = ix
			}
		}
	}
}

// --- DDL undo log ---

type undoKind int

const (
	undoCreateTable undoKind = iota
	undoDropTable
	undoCreateIndex
	undoDropIndex
	undoAlterTable
)

type undoRec struct {
	kind           undoKind
	table          string
	index          string
	droppedTable   *Table
	droppedIndex   *Index
	droppedIndexes []*Index
	alterOldName   string // pre-ALTER table name (RENAME undo)
}

// --- sessions ---

// Session is one client connection to a Database. Sessions are not safe
// for concurrent use; each gateway request (each CGI process in the
// paper's model) owns one session, but many sessions now run genuinely
// in parallel. In auto-commit mode every statement is its own
// transaction (retried internally on serialization conflicts). BeginTxn
// opens an explicit snapshot-isolation transaction: reads see the
// snapshot taken at BeginTxn, writes stay private until Commit, and a
// write-write conflict with a concurrent committer surfaces as a
// retryable SQLSTATE 40001 error.
type Session struct {
	db         *Database
	tx         *txnState
	serialHeld bool
	closed     bool

	// lastRetries counts conflict retries of the most recent recorded
	// statement; lastDigest is its statement digest. Sessions are
	// single-goroutine, so plain fields suffice.
	lastRetries int64
	lastDigest  string

	// trk collects per-operator counters while an EXPLAIN ANALYZE target
	// runs; nil in normal execution.
	trk *execTracker
}

// NewSession opens a session on db.
func NewSession(db *Database) *Session {
	return &Session{db: db}
}

// Close releases the session, rolling back any open transaction.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.tx != nil {
		return s.Rollback()
	}
	return nil
}

// InTxn reports whether an explicit transaction is open.
func (s *Session) InTxn() bool { return s.tx != nil }

// BeginTxn starts an explicit snapshot-isolation transaction.
func (s *Session) BeginTxn() error {
	if s.closed {
		return &Error{Code: CodeInvalidTxnState, Message: "session is closed"}
	}
	if s.tx != nil {
		return &Error{Code: CodeInvalidTxnState, Message: "transaction already in progress"}
	}
	if s.db.serial.Load() {
		s.db.serialMu.Lock()
		s.serialHeld = true
	}
	s.tx = s.db.begin()
	return nil
}

// Commit commits the explicit transaction, making its writes visible
// atomically and bumping the version counters of written tables.
func (s *Session) Commit() error {
	if s.tx == nil {
		return &Error{Code: CodeInvalidTxnState, Message: "no transaction in progress"}
	}
	tx := s.tx
	s.tx = nil
	s.db.commitTxn(tx)
	if s.serialHeld {
		s.serialHeld = false
		s.db.serialMu.Unlock()
	}
	return nil
}

// Rollback aborts the explicit transaction. Its row versions vanish
// atomically; DDL is undone structurally. Version counters bump only
// for tables the transaction wrote — cached results over tables it
// merely read stay valid.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return &Error{Code: CodeInvalidTxnState, Message: "no transaction in progress"}
	}
	tx := s.tx
	s.tx = nil
	s.db.rollbackTxn(tx, tx.conflicted)
	if s.serialHeld {
		s.serialHeld = false
		s.db.serialMu.Unlock()
	}
	return nil
}

// Exec parses and executes one SQL statement, returning its result.
// Params bind to ? placeholders in order.
func (s *Session) Exec(sql string, params ...Value) (*Result, error) {
	p, err := s.prepare(sql, params)
	if err != nil {
		return nil, err
	}
	return s.execPrepared(sql, p)
}

// prepared is one statement resolved for execution: a private AST (from
// the plan cache or a fresh parse) with its bind values. digest/norm are
// set when the plan-cache path already computed them, saving the
// recording path a second lex.
type prepared struct {
	st           Stmt
	params       []Value
	digest, norm string
	hit          bool
}

// prepare resolves sql to an executable statement, routing literal-only
// statements through the plan cache. Caller-supplied ? parameters force
// the plain parse path (the statement already is a shape).
func (s *Session) prepare(sql string, params []Value) (*prepared, error) {
	if s.closed {
		return nil, &Error{Code: CodeInvalidTxnState, Message: "session is closed"}
	}
	if len(params) == 0 {
		if st, vals, digest, norm, hit, ok := s.db.prepareCached(sql); ok {
			return &prepared{st: st, params: vals, digest: digest, norm: norm, hit: hit}, nil
		}
	}
	st, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return &prepared{st: st, params: params}, nil
}

// execPrepared executes p and, when engine observability is on, files
// the execution under sql's digest in the statement stats registry. Only
// paths that still have the SQL text run through here — ExecScript and
// prepared statements execute digest-less.
func (s *Session) execPrepared(sql string, p *prepared) (*Result, error) {
	st, params := p.st, p.params
	if s.db.stmts == nil || !obsEnabled() {
		s.lastDigest = ""
		return s.ExecStmt(st, params...)
	}
	digest, norm := p.digest, p.norm
	if digest == "" {
		digest, norm = DigestSQL(sql)
	}
	s.lastDigest = digest
	s.lastRetries = 0
	start := time.Now()
	res, err := s.ExecStmt(st, params...)
	micros := time.Since(start).Microseconds()
	var rows int64
	if res != nil {
		rows = res.RowsAffected
	}
	s.db.stmts.Record(digest, norm, StatementKind(st), micros, rows, s.lastRetries, err != nil)
	if err == nil {
		if x, ok := st.(*ExplainStmt); ok && x.Analyze {
			// File the rendered plan under the *target* statement's digest,
			// where /debug/statements?digest= readers will look for it.
			if innerDigest, innerNorm, ok := DigestSQLInner(sql); ok {
				s.db.stmts.SetPlan(innerDigest, innerNorm, planResultText(res))
			}
		}
	}
	return res, err
}

// LastDigest returns the digest of the session's most recent statement
// executed with SQL text available, or "" when recording was off.
func (s *Session) LastDigest() string { return s.lastDigest }

// ExecStmt executes a parsed statement.
func (s *Session) ExecStmt(st Stmt, params ...Value) (*Result, error) {
	switch x := st.(type) {
	case *BeginStmt:
		if err := s.BeginTxn(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *CommitStmt:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *RollbackStmt:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *SelectStmt:
		return s.execRead(x, params)
	case *ExplainStmt:
		return s.execExplain(x, params)
	case *InsertStmt:
		return s.execDML(func(vw view, tx *txnState) (*Result, error) {
			return vw.execInsert(tx, x, params)
		}, x.Table)
	case *UpdateStmt:
		return s.execDML(func(vw view, tx *txnState) (*Result, error) {
			return vw.execUpdate(tx, x, params)
		}, x.Table)
	case *DeleteStmt:
		return s.execDML(func(vw view, tx *txnState) (*Result, error) {
			return vw.execDelete(tx, x, params)
		}, x.Table)
	case *CreateTableStmt:
		return s.execDDL(true, func(tx *txnState) (*Result, error) {
			return s.db.execCreateTable(tx, x)
		}, x.Table)
	case *AlterTableStmt:
		// A rename changes what two names resolve to; bump both.
		return s.execDDL(true, func(tx *txnState) (*Result, error) {
			return s.db.execAlterTable(tx, x)
		}, x.Table, x.RenameTo)
	case *DropTableStmt:
		return s.execDDL(true, func(tx *txnState) (*Result, error) {
			return s.db.execDropTable(tx, x)
		}, x.Table)
	case *CreateIndexStmt:
		// Index DDL changes access paths, never results: no version bump.
		return s.execDDL(false, func(tx *txnState) (*Result, error) {
			return s.db.execCreateIndex(tx, x)
		})
	case *DropIndexStmt:
		return s.execDDL(false, func(tx *txnState) (*Result, error) {
			return s.db.execDropIndex(tx, x)
		})
	default:
		return nil, &Error{Code: CodeFeature,
			Message: fmt.Sprintf("unsupported statement type %T", st)}
	}
}

// reader returns the view a read should resolve against and a release
// function. Inside a transaction that is the transaction's snapshot;
// otherwise a fresh snapshot, registered so vacuum can't reclaim
// versions mid-statement.
func (s *Session) reader() (view, func()) {
	if s.tx != nil {
		return view{db: s.db, txn: s.tx.txn, snap: s.tx.txn.Snapshot(), trk: s.trk}, func() {}
	}
	snap := s.db.mvcc.AcquireSnapshot()
	return view{db: s.db, snap: snap, trk: s.trk}, func() { s.db.mvcc.ReleaseSnapshot(snap) }
}

func (s *Session) execRead(sel *SelectStmt, params []Value) (*Result, error) {
	db := s.db
	lockStart := obsNow()
	if s.tx == nil && db.serial.Load() {
		db.serialMu.RLock()
		defer db.serialMu.RUnlock()
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	observeLockWait(lockStart)
	vw, release := s.reader()
	defer release()
	execStart := obsNow()
	res, err := vw.execSelect(sel, params)
	observeExec(mExecSelect, execStart)
	if err == nil {
		observeRows(res)
	}
	return res, err
}

// maxAutoRetries bounds the internal conflict-retry loop for
// auto-commit statements. Each retry runs on a fresh snapshot, so
// progress requires only that some committer wins each round.
const maxAutoRetries = 256

func retryBackoff(attempt int) {
	if attempt < 4 {
		runtime.Gosched()
		return
	}
	d := time.Duration(attempt) * 20 * time.Microsecond
	if d > 2*time.Millisecond {
		d = 2 * time.Millisecond
	}
	time.Sleep(d)
}

// execDML runs a data-changing statement. Inside an explicit
// transaction the effects stay pending (a failed statement is undone,
// keeping statements atomic). In auto-commit mode the statement is its
// own transaction: committed on success, rolled back and retried on a
// fresh snapshot when it loses a first-committer-wins race.
func (s *Session) execDML(run func(view, *txnState) (*Result, error), targets ...string) (*Result, error) {
	db := s.db
	if s.tx != nil {
		lockStart := obsNow()
		db.mu.RLock()
		defer db.mu.RUnlock()
		observeLockWait(lockStart)
		tx := s.tx
		mark := len(tx.writes)
		execStart := obsNow()
		res, err := run(view{db: db, txn: tx.txn, snap: tx.txn.Snapshot(), trk: s.trk}, tx)
		observeExec(mExecWrite, execStart)
		if err != nil {
			db.abortStmt(tx, mark)
			if IsSerializationFailure(err) {
				tx.conflicted = true
			}
			return nil, err
		}
		return res, nil
	}
	serial := db.serial.Load()
	lockStart := obsNow()
	for attempt := 0; ; attempt++ {
		if serial {
			db.serialMu.Lock()
		}
		db.mu.RLock()
		observeLockWait(lockStart)
		lockStart = time.Time{}
		tx := db.begin()
		execStart := obsNow()
		res, err := run(view{db: db, txn: tx.txn, snap: tx.txn.Snapshot(), trk: s.trk}, tx)
		observeExec(mExecWrite, execStart)
		db.mu.RUnlock()
		if err == nil {
			db.commitTxn(tx)
			if serial {
				db.serialMu.Unlock()
			}
			return res, nil
		}
		conflict := IsSerializationFailure(err)
		db.rollbackTxn(tx, conflict)
		if serial {
			db.serialMu.Unlock()
		}
		if conflict && attempt < maxAutoRetries {
			db.stmtRetries.Add(1)
			s.lastRetries++
			if obsEnabled() {
				db.noteTableRetries(targets)
			}
			retryBackoff(attempt)
			continue
		}
		// Conservative contract (pinned by version tests): a failed
		// auto-commit write still bumps its target tables — it may have
		// left partial effects behind in earlier engine generations, and a
		// spurious bump costs a cache miss, never a stale hit.
		db.bumpVersions(targets...)
		return nil, err
	}
}

// execDDL runs a catalog-changing statement under the exclusive catalog
// lock. DDL is not snapshot-isolated: its effects are visible to every
// session immediately (and version counters bump immediately, so result
// caches can't serve results for a shape that no longer exists); a
// transaction's DDL is undone structurally on rollback.
func (s *Session) execDDL(bump bool, run func(*txnState) (*Result, error), targets ...string) (*Result, error) {
	db := s.db
	serial := s.tx == nil && db.serial.Load()
	for attempt := 0; ; attempt++ {
		lockStart := obsNow()
		if serial {
			db.serialMu.Lock()
		}
		db.mu.Lock()
		observeLockWait(lockStart)
		execStart := obsNow()
		res, err := run(s.tx)
		observeExec(mExecDDL, execStart)
		if bump {
			// Unconditional, as in the undo-log engine: even a failed DDL
			// statement bumps, trading a cache miss for never a stale hit.
			db.bumpVersions(targets...)
			db.bumpSchema(targets...)
		}
		if err == nil && bump && s.tx != nil {
			s.tx.ddlBump = append(s.tx.ddlBump, targets...)
		}
		db.mu.Unlock()
		if serial {
			db.serialMu.Unlock()
		}
		if err != nil && IsSerializationFailure(err) {
			if s.tx == nil && attempt < maxAutoRetries {
				s.lastRetries++
				retryBackoff(attempt)
				continue
			}
			if s.tx != nil {
				s.tx.conflicted = true
			}
		}
		return res, err
	}
}

// Query executes a SELECT (or any statement) and returns a row cursor.
func (s *Session) Query(sql string, params ...Value) (*Rows, error) {
	res, err := s.Exec(sql, params...)
	if err != nil {
		return nil, err
	}
	return &Rows{res: res, pos: -1}, nil
}

// ExecScript parses and executes a semicolon-separated script, stopping at
// the first error. It returns the number of statements executed.
func (s *Session) ExecScript(script string) (int, error) {
	stmts, err := ParseAll(script)
	if err != nil {
		return 0, err
	}
	for i, st := range stmts {
		if _, err := s.ExecStmt(st); err != nil {
			return i, err
		}
	}
	return len(stmts), nil
}

// Rows is a forward-only cursor over a materialised result set — the
// row-at-a-time fetch interface the macro engine's %ROW block consumes.
type Rows struct {
	res *Result
	pos int
}

// Columns returns the result column names.
func (r *Rows) Columns() []string { return r.res.Columns }

// Next advances to the next row, returning false at the end.
func (r *Rows) Next() bool {
	if r.pos+1 >= len(r.res.Rows) {
		return false
	}
	r.pos++
	return true
}

// Row returns the current row. Next must have returned true.
func (r *Rows) Row() []Value { return r.res.Rows[r.pos] }

// RowCount returns the total number of rows in the result.
func (r *Rows) RowCount() int { return len(r.res.Rows) }

// Close releases the cursor (a no-op for materialised results; present so
// callers follow the usual acquire/release discipline).
func (r *Rows) Close() error { return nil }
