package sqldb

import "strings"

// patRune is one compiled pattern element: a rune plus whether it is a
// literal (escaped) occurrence. Non-literal '_' is the single-character
// wildcard; '%' never appears here (it splits parts).
type patRune struct {
	r       rune
	literal bool
}

// likeMatch implements the SQL LIKE predicate: '%' matches any sequence
// of characters (including empty), '_' matches exactly one character, and
// the optional escape character makes the following character literal.
// Matching is case-sensitive, per SQL-92; callers wanting case-folding
// apply UPPER/LOWER.
func likeMatch(s, pattern string, escape rune, hasEscape bool) (bool, error) {
	// Split the pattern on unescaped '%' into parts.
	pr := []rune(pattern)
	var parts [][]patRune
	var part []patRune
	for i := 0; i < len(pr); i++ {
		r := pr[i]
		if hasEscape && r == escape {
			if i+1 >= len(pr) {
				return false, &Error{Code: CodeInvalidText,
					Message: "LIKE pattern ends with escape character"}
			}
			i++
			part = append(part, patRune{r: pr[i], literal: true})
			continue
		}
		if r == '%' {
			parts = append(parts, part)
			part = nil
			continue
		}
		part = append(part, patRune{r: r})
	}
	parts = append(parts, part)

	sr := []rune(s)
	// matchPartAt matches one compiled part against sr starting exactly
	// at pos; it returns the position after the match, or -1.
	matchPartAt := func(part []patRune, pos int) int {
		for _, p := range part {
			if pos >= len(sr) {
				return -1
			}
			if !p.literal && p.r == '_' {
				pos++
				continue
			}
			if sr[pos] != p.r {
				return -1
			}
			pos++
		}
		return pos
	}

	// parts[0] is anchored at the start.
	pos := matchPartAt(parts[0], 0)
	if pos < 0 {
		return false, nil
	}
	if len(parts) == 1 {
		return pos == len(sr), nil
	}
	// Middle parts float: find the earliest match at or after pos.
	for k := 1; k < len(parts)-1; k++ {
		found := -1
		for start := pos; start <= len(sr); start++ {
			if p := matchPartAt(parts[k], start); p >= 0 {
				found = p
				break
			}
		}
		if found < 0 {
			return false, nil
		}
		pos = found
	}
	// The last part is anchored at the end.
	last := parts[len(parts)-1]
	start := len(sr) - len(last)
	if start < pos {
		return false, nil
	}
	return matchPartAt(last, start) == len(sr), nil
}

// likePrefix reports whether a LIKE pattern is a simple prefix pattern
// ("abc%", no other wildcards or escapes) and returns the prefix. The
// executor uses this to route prefix LIKE predicates through an ordered
// index (ablation A5).
func likePrefix(pattern string) (string, bool) {
	if !strings.HasSuffix(pattern, "%") {
		return "", false
	}
	body := pattern[:len(pattern)-1]
	if strings.ContainsAny(body, "%_") {
		return "", false
	}
	return body, true
}
