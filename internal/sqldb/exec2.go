package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// execUnion evaluates a UNION chain: each arm runs as an independent
// SELECT; the combined rows are de-duplicated unless every combining
// operator is UNION ALL; ORDER BY (by output column name or ordinal) and
// LIMIT/OFFSET then apply to the whole result. Column names come from
// the first arm, as in SQL.
func (vw view) execUnion(sel *SelectStmt, params []Value) (*Result, error) {
	head := *sel
	head.Unions = nil
	head.OrderBy, head.Limit, head.Offset = nil, nil, nil
	// The head arm runs through a copy; point the copy's tracking site at
	// the original so EXPLAIN ANALYZE counters land on the plan's node.
	head.site = sel.siteKey()
	res, err := vw.execSelectSingle(&head, params)
	if err != nil {
		return nil, err
	}
	allAll := true
	for _, part := range sel.Unions {
		if !part.All {
			allAll = false
		}
		arm, err := vw.execSelectSingle(part.Sel, params)
		if err != nil {
			return nil, err
		}
		if len(arm.Columns) != len(res.Columns) {
			return nil, &Error{Code: CodeCardinality,
				Message: fmt.Sprintf("UNION arms have %d and %d columns",
					len(res.Columns), len(arm.Columns))}
		}
		res.Rows = append(res.Rows, arm.Rows...)
	}
	if !allAll {
		seen := map[string]struct{}{}
		kept := res.Rows[:0:0]
		for _, r := range res.Rows {
			k := identityKey(r)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			kept = append(kept, r)
		}
		vw.trk.stage(sel, "union", len(res.Rows), len(kept))
		res.Rows = kept
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]int, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			pos, err := unionOrderColumn(o.Expr, res.Columns)
			if err != nil {
				return nil, err
			}
			keys[i] = pos
		}
		var sortErr error
		sort.SliceStable(res.Rows, func(a, b int) bool {
			for j, pos := range keys {
				ka, kb := res.Rows[a][pos], res.Rows[b][pos]
				var c int
				switch {
				case ka.IsNull() && kb.IsNull():
					c = 0
				case ka.IsNull():
					c = -1
				case kb.IsNull():
					c = 1
				default:
					var err error
					c, err = Compare(ka, kb)
					if err != nil && sortErr == nil {
						sortErr = err
					}
				}
				if c == 0 {
					continue
				}
				if sel.OrderBy[j].Desc {
					return c > 0
				}
				return c < 0
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}
	if sel.Offset != nil {
		v, ok := constValue(sel.Offset, params)
		if !ok {
			return nil, errSyntax("OFFSET must be a constant expression")
		}
		n, nok := v.AsInt()
		if !nok || n < 0 {
			return nil, errSyntax("OFFSET must be a non-negative integer")
		}
		if int(n) >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[n:]
		}
	}
	if sel.Limit != nil {
		v, ok := constValue(sel.Limit, params)
		if !ok {
			return nil, errSyntax("LIMIT must be a constant expression")
		}
		n, nok := v.AsInt()
		if !nok || n < 0 {
			return nil, errSyntax("LIMIT must be a non-negative integer")
		}
		if int(n) < len(res.Rows) {
			res.Rows = res.Rows[:n]
		}
	}
	res.RowsAffected = int64(len(res.Rows))
	return res, nil
}

// unionOrderColumn resolves a UNION ORDER BY key: an output column name
// or a 1-based ordinal.
func unionOrderColumn(e Expr, cols []string) (int, error) {
	switch x := e.(type) {
	case *ColumnRef:
		if x.Table == "" {
			for i, c := range cols {
				if strings.EqualFold(c, x.Column) {
					return i, nil
				}
			}
		}
		return 0, errUndefinedColumn(x.Column)
	case *Literal:
		if x.Val.T == TInt {
			n := int(x.Val.I)
			if n >= 1 && n <= len(cols) {
				return n - 1, nil
			}
		}
		return 0, errSyntax("ORDER BY ordinal %s out of range", x.Val.String())
	default:
		return 0, &Error{Code: CodeFeature,
			Message: "UNION ORDER BY supports output column names and ordinals only"}
	}
}

// cloneForUndo deep-copies a table so ALTER TABLE can be rolled back
// wholesale. Only committed history clones: pending versions belong to
// the altering transaction itself (the pending guard excludes everyone
// else) and would be aborted by the same rollback that restores the
// clone, so they are dropped; delete intents likewise. Committed
// begin/end stamps copy so restored chains keep their snapshot
// visibility. Caller holds t.mu exclusively.
func (t *Table) cloneForUndo() *Table {
	c := &Table{
		Name:    t.Name,
		Columns: append([]Column(nil), t.Columns...),
		byID:    make(map[int64]*storedRow, len(t.byID)),
		nextID:  t.nextID,
	}
	for _, r := range t.rows {
		nr := &storedRow{id: r.id}
		var tail *rowVersion
		for v := r.head; v != nil; v = v.prev {
			if v.meta.Creator() != nil {
				continue // pending (or aborted): not part of committed history
			}
			nv := &rowVersion{vals: append([]Value(nil), v.vals...)}
			nv.meta.CopyStampsFrom(&v.meta)
			if tail == nil {
				nr.head = nv
			} else {
				tail.prev = nv
			}
			tail = nv
		}
		if nr.head == nil {
			continue // row existed only as uncommitted versions
		}
		c.rows = append(c.rows, nr)
		c.byID[nr.id] = nr
	}
	for _, ix := range t.indexes {
		nix, err := buildIndex(c, ix.Name, ix.Column, ix.Unique)
		if err != nil {
			// The source index was consistent; rebuilding cannot fail.
			panic("sqldb: cloneForUndo index rebuild: " + err.Error())
		}
		c.indexes = append(c.indexes, nix)
	}
	return c
}

// execAlterTable applies ADD COLUMN, DROP COLUMN, or RENAME TO.
// Column changes rewrite every version of every chain in place, which
// is only safe while no other transaction holds pending versions on the
// table (guardPending); the altering transaction's own pending versions
// rewrite along with the rest. Rollback restores a pre-image snapshot
// of the committed history.
func (db *Database) execAlterTable(tx *txnState, at *AlterTableStmt) (*Result, error) {
	t, err := db.table(at.Table)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := guardPending(t, tx, "alter"); err != nil {
		return nil, err
	}
	snapshot := t.cloneForUndo()
	oldKey := strings.ToLower(t.Name)

	eachVersion := func(fn func(*rowVersion)) {
		for _, r := range t.rows {
			for v := r.head; v != nil; v = v.prev {
				fn(v)
			}
		}
	}

	switch {
	case at.AddColumn != nil:
		cd := at.AddColumn
		if t.colIndex(cd.Name) >= 0 {
			return nil, errSyntax("column %q already exists", cd.Name)
		}
		col := Column{Name: cd.Name, Type: cd.Type, NotNull: cd.NotNull}
		fill := Null
		if cd.Default != nil {
			v, err := eval(cd.Default, &evalEnv{})
			if err != nil {
				return nil, err
			}
			cv, err := coerceToColumn(v, cd.Type)
			if err != nil {
				return nil, err
			}
			col.Default = cv
			col.HasDefault = true
			fill = cv
		}
		if col.NotNull && fill.IsNull() && len(t.rows) > 0 {
			return nil, &Error{Code: CodeNotNullViolation,
				Message: fmt.Sprintf("cannot add NOT NULL column %q without a default to a non-empty table", cd.Name)}
		}
		t.Columns = append(t.Columns, col)
		eachVersion(func(v *rowVersion) {
			v.vals = append(v.vals, fill)
		})
	case at.DropColumn != "":
		pos := t.colIndex(at.DropColumn)
		if pos < 0 {
			return nil, errUndefinedColumn(at.DropColumn)
		}
		for _, ix := range t.indexes {
			if ix.colPos == pos {
				return nil, &Error{Code: CodeFeature,
					Message: fmt.Sprintf("cannot drop column %q: index %q depends on it (drop the index first)",
						at.DropColumn, ix.Name)}
			}
		}
		t.Columns = append(t.Columns[:pos:pos], t.Columns[pos+1:]...)
		eachVersion(func(v *rowVersion) {
			v.vals = append(v.vals[:pos:pos], v.vals[pos+1:]...)
		})
		for _, ix := range t.indexes {
			if ix.colPos > pos {
				ix.colPos--
			}
		}
	case at.RenameTo != "":
		newKey := strings.ToLower(at.RenameTo)
		if _, exists := db.tables[newKey]; exists && newKey != oldKey {
			return nil, &Error{Code: CodeDuplicateTable,
				Message: fmt.Sprintf("table %q already exists", at.RenameTo)}
		}
		delete(db.tables, oldKey)
		t.Name = at.RenameTo
		db.tables[newKey] = t
		for _, ix := range t.indexes {
			ix.Table = at.RenameTo
		}
	default:
		return nil, errSyntax("ALTER TABLE requires ADD, DROP, or RENAME")
	}
	tx.logDDL(undoRec{kind: undoAlterTable, table: t.Name,
		alterOldName: snapshot.Name, droppedTable: snapshot})
	return &Result{}, nil
}
