package sqldb

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"db2www/internal/sqldb/mvcc"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       Type
	NotNull    bool
	PrimaryKey bool
	Default    Value // Null when no default
	HasDefault bool
}

// rowVersion is one version of a row's values. Chains run newest-first:
// head is the most recent version (possibly pending), prev the one it
// superseded. Chain links and vals are guarded by the table latch; the
// visibility metadata is stamped by commit without the latch, which is
// why it lives in atomics (mvcc.Meta).
type rowVersion struct {
	meta mvcc.Meta
	vals []Value
	prev *rowVersion
}

// storedRow is one logical row: a stable ID plus its version chain. Row
// IDs are unique per table for the table's lifetime and never reused,
// which keeps index posting lists unambiguous.
type storedRow struct {
	id   int64
	head *rowVersion
}

// visibleVersion resolves the row against a snapshot: the newest version
// visible to txn at snap, or nil when the row does not exist for that
// reader. The caller holds the table latch (shared is enough).
func (r *storedRow) visibleVersion(txn *mvcc.Txn, snap uint64) *rowVersion {
	for v := r.head; v != nil; v = v.prev {
		if v.meta.Visible(txn, snap) {
			return v
		}
	}
	return nil
}

// unlink removes version v from the chain, returning false when v was
// already gone (vacuum may race an abort to the same garbage; both run
// under the exclusive table latch, so the bool keeps index posting
// removal exactly-once). Caller holds the exclusive table latch.
func (r *storedRow) unlink(v *rowVersion) bool {
	if r.head == v {
		r.head = v.prev
		return true
	}
	for c := r.head; c != nil; c = c.prev {
		if c.prev == v {
			c.prev = v.prev
			return true
		}
	}
	return false
}

// Table is an in-memory heap of versioned rows plus its secondary
// indexes. The latch guards the heap slices, chain links, and index
// structures; statements hold it only for short scan or apply phases,
// never across expression evaluation.
type Table struct {
	Name    string
	Columns []Column

	mu      sync.RWMutex
	rows    []*storedRow
	byID    map[int64]*storedRow
	nextID  int64
	indexes []*Index

	// pending counts uncommitted version creations plus delete intents
	// on this table. ALTER TABLE refuses to rewrite row layouts while
	// another transaction's pending versions are present.
	pending atomic.Int64

	// Access counters, maintained unconditionally (plain atomics are
	// cheap enough to keep accurate even with the obs registry off).
	// rowsRead counts rows a scan returned after visibility resolution;
	// the DML counters count logical row effects, not versions.
	seqScans     atomic.Int64
	idxScans     atomic.Int64
	rowsRead     atomic.Int64
	rowsInserted atomic.Int64
	rowsUpdated  atomic.Int64
	rowsDeleted  atomic.Int64

	// Planner statistics, refreshed by vacuum sweeps: statRows is the
	// visible row count at the last sweep, statIns/statDel the
	// rowsInserted/rowsDeleted readings at that moment. estTableRows
	// extrapolates between sweeps from the counters' drift, latch-free.
	statRows atomic.Int64
	statIns  atomic.Int64
	statDel  atomic.Int64
}

// Index is a single-column secondary index backed by a B-tree. Postings
// are a multiset over versions: every version of a row contributes its
// key, so index scans over-approximate any snapshot's row set and the
// caller re-applies the full WHERE clause. NULL keys stay out of the
// tree (and out of uniqueness checking, per SQL), counted per row so
// version add/remove stays balanced.
type Index struct {
	Name   string
	Table  string
	Column string
	Unique bool
	colPos int
	tree   *btree
	nulls  map[int64]int

	// scans counts index-routed scans that used this index. distinct
	// tracks the tree's distinct-key count so the planner can estimate
	// per-column cardinality without taking the table latch.
	scans    atomic.Int64
	distinct atomic.Int64
}

// colIndex returns the position of name in the table's columns, or -1.
// Column name matching is case-insensitive, as in SQL.
func (t *Table) colIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the declared column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i := range t.Columns {
		names[i] = t.Columns[i].Name
	}
	return names
}

// RowCount returns the number of rows visible to a fresh snapshot
// (committed, not deleted). Pending versions do not count.
func (t *Table) RowCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, r := range t.rows {
		if r.visibleVersion(nil, ^uint64(0)) != nil {
			n++
		}
	}
	return n
}

// appendRow allocates a new row whose initial version is pending in
// txn, maintaining indexes. Caller holds the exclusive table latch and
// has already checked uniqueness.
func (t *Table) appendRow(vals []Value, txn *mvcc.Txn) *storedRow {
	t.nextID++
	v := &rowVersion{vals: vals}
	v.meta.InitPending(txn)
	row := &storedRow{id: t.nextID, head: v}
	t.rows = append(t.rows, row)
	t.byID[row.id] = row
	for _, ix := range t.indexes {
		ix.addVersion(row.id, v)
	}
	return row
}

// removeRows drops fully-dead rows (empty chains) from the heap,
// preserving ID order. Caller holds the exclusive table latch; all
// index postings were removed when the last version was unlinked.
func (t *Table) removeRows(dead map[int64]bool) {
	if len(dead) == 0 {
		return
	}
	kept := t.rows[:0]
	for _, r := range t.rows {
		if dead[r.id] && r.head == nil {
			delete(t.byID, r.id)
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(t.rows); i++ {
		t.rows[i] = nil
	}
	t.rows = kept
}

func (ix *Index) addVersion(rowID int64, v *rowVersion) {
	key := v.vals[ix.colPos]
	if key.IsNull() {
		ix.nulls[rowID]++
		return
	}
	ix.tree.insert(key, rowID)
	// Mirror the tree's distinct-key count into an atomic (we hold the
	// table latch; planner reads don't).
	ix.distinct.Store(int64(ix.tree.size))
}

func (ix *Index) removeVersion(rowID int64, v *rowVersion) {
	key := v.vals[ix.colPos]
	if key.IsNull() {
		if n := ix.nulls[rowID] - 1; n <= 0 {
			delete(ix.nulls, rowID)
		} else {
			ix.nulls[rowID] = n
		}
		return
	}
	ix.tree.delete(key, rowID)
	ix.distinct.Store(int64(ix.tree.size))
}

// keyCurrently reports whether the row currently claims key at column
// pos for uniqueness purposes: some version that is (or may yet become)
// the row's live state carries the key. The second result distinguishes
// a claim held only by another transaction's uncommitted write, which
// callers surface as a retryable conflict rather than a hard violation.
// Caller holds the table latch.
func (r *storedRow) keyCurrently(pos int, key Value, txn *mvcc.Txn) (claimed, pendingOther bool) {
	for v := r.head; v != nil; v = v.prev {
		if c := v.meta.Creator(); c != nil {
			if c.Aborted() {
				continue
			}
			if d := v.meta.Deleter(); d == c {
				continue // created and superseded by the same txn
			}
			if IdentityEqual(v.vals[pos], key) {
				return true, c != txn
			}
			continue
		}
		// Newest committed version decides; older history is irrelevant.
		if v.meta.End() != 0 {
			return false, false
		}
		if d := v.meta.Deleter(); d != nil && !d.Aborted() {
			if d == txn {
				return false, false // we deleted it; the key frees on commit
			}
			if IdentityEqual(v.vals[pos], key) {
				// A concurrent delete might abort and keep the claim.
				return true, true
			}
			return false, false
		}
		return IdentityEqual(v.vals[pos], key), false
	}
	return false, false
}

// checkUnique verifies key can be written at ix's column without
// violating uniqueness, ignoring selfID's own row. Caller holds the
// exclusive table latch.
func (t *Table) checkUnique(ix *Index, key Value, selfID int64, txn *mvcc.Txn) error {
	if key.IsNull() {
		return nil
	}
	for _, id := range ix.tree.lookup(key) {
		if id == selfID {
			continue
		}
		row, ok := t.byID[id]
		if !ok {
			continue
		}
		claimed, pendingOther := row.keyCurrently(ix.colPos, key, txn)
		if !claimed {
			continue
		}
		if pendingOther {
			return errConflict(fmt.Sprintf(
				"key %q of unique index %q is claimed by a concurrent uncommitted transaction",
				key.String(), ix.Name))
		}
		return &Error{Code: CodeUniqueViolation,
			Message: fmt.Sprintf("duplicate key value %q violates unique index %q",
				key.String(), ix.Name)}
	}
	return nil
}

// writeCheck resolves the version a write by txn would supersede,
// enforcing first-committer-wins: a row whose newest live state is a
// concurrent transaction's pending write, or a commit after txn's
// snapshot, is a serialization conflict. A (nil, nil) result means the
// row is no longer a target (e.g. txn already deleted it) and the write
// silently skips it. Caller holds the exclusive table latch.
func (t *Table) writeCheck(row *storedRow, txn *mvcc.Txn, snap uint64) (*rowVersion, error) {
	for v := row.head; v != nil; v = v.prev {
		if c := v.meta.Creator(); c != nil {
			if c.Aborted() {
				continue
			}
			if c != txn {
				return nil, errConflict(fmt.Sprintf(
					"row in table %q was written by a concurrent transaction", t.Name))
			}
			if v.meta.Deleter() == txn {
				return nil, nil
			}
			return v, nil
		}
		if v.meta.Begin() > snap {
			return nil, errConflict(fmt.Sprintf(
				"row in table %q was modified after this transaction's snapshot", t.Name))
		}
		if d := v.meta.Deleter(); d != nil && !d.Aborted() {
			if d == txn {
				return nil, nil
			}
			return nil, errConflict(fmt.Sprintf(
				"row in table %q is being deleted by a concurrent transaction", t.Name))
		}
		if e := v.meta.End(); e != 0 {
			if e > snap {
				return nil, errConflict(fmt.Sprintf(
					"row in table %q was deleted after this transaction's snapshot", t.Name))
			}
			return nil, nil
		}
		return v, nil
	}
	return nil, nil
}

// buildIndex creates an Index over an existing table's rows, adding one
// posting per version. Unique validation considers only each row's
// current claim (newest committed live version or a pending write); a
// clash involving an uncommitted version reports a retryable conflict.
func buildIndex(t *Table, name, column string, unique bool) (*Index, error) {
	pos := t.colIndex(column)
	if pos < 0 {
		return nil, errUndefinedColumn(column)
	}
	ix := &Index{
		Name:   name,
		Table:  t.Name,
		Column: t.Columns[pos].Name,
		Unique: unique,
		colPos: pos,
		tree:   newBTree(),
		nulls:  map[int64]int{},
	}
	claims := map[string]bool{}
	for _, row := range t.rows {
		for v := row.head; v != nil; v = v.prev {
			if c := v.meta.Creator(); c != nil && c.Aborted() {
				continue
			}
			ix.addVersion(row.id, v)
		}
		if !unique {
			continue
		}
		cur := row.currentClaimVersion()
		if cur == nil {
			continue
		}
		key := cur.vals[pos]
		if key.IsNull() {
			continue
		}
		k := identityKey([]Value{key})
		if claims[k] {
			if cur.meta.Creator() != nil {
				return nil, errConflict(fmt.Sprintf(
					"cannot create unique index %q: key %q is claimed by an uncommitted transaction",
					name, key.String()))
			}
			return nil, &Error{Code: CodeUniqueViolation,
				Message: fmt.Sprintf("cannot create unique index %q: duplicate key %q",
					name, key.String())}
		}
		claims[k] = true
	}
	ix.distinct.Store(int64(ix.tree.size))
	return ix, nil
}

// currentClaimVersion returns the version that holds the row's current
// (or prospective) state: a live pending write, else the newest
// committed live version. Nil when the row is dead or dying.
func (r *storedRow) currentClaimVersion() *rowVersion {
	for v := r.head; v != nil; v = v.prev {
		if c := v.meta.Creator(); c != nil {
			if c.Aborted() || v.meta.Deleter() == c {
				continue
			}
			return v
		}
		if v.meta.End() != 0 {
			return nil
		}
		if d := v.meta.Deleter(); d != nil && !d.Aborted() {
			return nil
		}
		return v
	}
	return nil
}

// TableStats is a point-in-time summary of one table's access activity
// and MVCC storage health, shown on /server-status ("Storage") and
// exported as per-table metrics. The storage figures (rows, versions,
// chain depth) come from walking every chain under the shared latch, so
// the snapshot is for status pages and debugging, not hot paths.
type TableStats struct {
	Name            string       `json:"name"`
	Rows            int          `json:"rows"`      // visible to a fresh snapshot
	Versions        int          `json:"versions"`  // total chain entries, incl. pending
	MaxChain        int          `json:"max_chain"` // deepest version chain
	SeqScans        int64        `json:"seq_scans"`
	IndexScans      int64        `json:"index_scans"`
	RowsRead        int64        `json:"rows_read"`
	RowsInserted    int64        `json:"rows_inserted"`
	RowsUpdated     int64        `json:"rows_updated"`
	RowsDeleted     int64        `json:"rows_deleted"`
	ConflictRetries uint64       `json:"conflict_retries"`
	Indexes         []IndexStats `json:"indexes,omitempty"`
}

// IndexStats is one index's identity and usage count.
type IndexStats struct {
	Name   string `json:"name"`
	Column string `json:"column"`
	Unique bool   `json:"unique"`
	Scans  int64  `json:"scans"`
}

// TableStatsSnapshot returns per-table access counters and storage
// health for every table, sorted by name.
func (db *Database) TableStatsSnapshot() []TableStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	keys := make([]string, 0, len(db.tables))
	for k := range db.tables {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]TableStats, 0, len(keys))
	for _, k := range keys {
		t := db.tables[k]
		st := TableStats{
			Name:         t.Name,
			SeqScans:     t.seqScans.Load(),
			IndexScans:   t.idxScans.Load(),
			RowsRead:     t.rowsRead.Load(),
			RowsInserted: t.rowsInserted.Load(),
			RowsUpdated:  t.rowsUpdated.Load(),
			RowsDeleted:  t.rowsDeleted.Load(),
		}
		if v, ok := db.tableRetries.Load(k); ok {
			st.ConflictRetries = v.(*atomic.Uint64).Load()
		}
		t.mu.RLock()
		for _, r := range t.rows {
			n := 0
			for v := r.head; v != nil; v = v.prev {
				n++
			}
			st.Versions += n
			if n > st.MaxChain {
				st.MaxChain = n
			}
			if r.visibleVersion(nil, ^uint64(0)) != nil {
				st.Rows++
			}
		}
		for _, ix := range t.indexes {
			st.Indexes = append(st.Indexes, IndexStats{
				Name:   ix.Name,
				Column: ix.Column,
				Unique: ix.Unique,
				Scans:  ix.scans.Load(),
			})
		}
		t.mu.RUnlock()
		out = append(out, st)
	}
	return out
}

// indexOn returns the first index whose key column is at position pos,
// preferring unique indexes.
func (t *Table) indexOn(pos int) *Index {
	var found *Index
	for _, ix := range t.indexes {
		if ix.colPos != pos {
			continue
		}
		if ix.Unique {
			return ix
		}
		if found == nil {
			found = ix
		}
	}
	return found
}
