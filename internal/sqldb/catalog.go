package sqldb

import (
	"fmt"
	"sort"
	"strings"
)

// Column describes one column of a table.
type Column struct {
	Name       string
	Type       Type
	NotNull    bool
	PrimaryKey bool
	Default    Value // Null when no default
	HasDefault bool
}

// storedRow is one physical row. Row IDs are unique per table for the
// table's lifetime and never reused, which keeps index posting lists and
// the undo log unambiguous.
type storedRow struct {
	id   int64
	vals []Value
}

// Table is an in-memory heap of rows plus its secondary indexes.
type Table struct {
	Name    string
	Columns []Column
	rows    []*storedRow
	byID    map[int64]*storedRow
	nextID  int64
	indexes []*Index
}

// Index is a single-column secondary index backed by a B-tree. NULL keys
// are kept out of the tree (and out of uniqueness checking, per SQL).
type Index struct {
	Name   string
	Table  string
	Column string
	Unique bool
	colPos int
	tree   *btree
	nulls  map[int64]struct{}
}

// colIndex returns the position of name in the table's columns, or -1.
// Column name matching is case-insensitive, as in SQL.
func (t *Table) colIndex(name string) int {
	for i := range t.Columns {
		if strings.EqualFold(t.Columns[i].Name, name) {
			return i
		}
	}
	return -1
}

// ColumnNames returns the declared column names in order.
func (t *Table) ColumnNames() []string {
	names := make([]string, len(t.Columns))
	for i := range t.Columns {
		names[i] = t.Columns[i].Name
	}
	return names
}

// RowCount returns the number of live rows.
func (t *Table) RowCount() int { return len(t.rows) }

// insertRow appends a fully-coerced row, maintaining indexes. It returns
// the new row ID.
func (t *Table) insertRow(vals []Value) (int64, error) {
	// Uniqueness checks first so a violation leaves no trace.
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		key := vals[idx.colPos]
		if key.IsNull() {
			continue
		}
		if post := idx.tree.lookup(key); len(post) > 0 {
			return 0, &Error{Code: CodeUniqueViolation,
				Message: fmt.Sprintf("duplicate key value %q violates unique index %q",
					key.String(), idx.Name)}
		}
	}
	t.nextID++
	row := &storedRow{id: t.nextID, vals: vals}
	t.rows = append(t.rows, row)
	t.byID[row.id] = row
	for _, idx := range t.indexes {
		idx.add(row)
	}
	return row.id, nil
}

// reinsertRow restores a previously deleted row with its original ID
// (transaction rollback path).
func (t *Table) reinsertRow(id int64, vals []Value) {
	row := &storedRow{id: id, vals: vals}
	t.rows = append(t.rows, row)
	t.byID[id] = row
	if id > t.nextID {
		t.nextID = id
	}
	for _, idx := range t.indexes {
		idx.add(row)
	}
	// Keep heap order stable by row ID so rollback restores scan order.
	sort.Slice(t.rows, func(i, j int) bool { return t.rows[i].id < t.rows[j].id })
}

// deleteRowByID removes a row, maintaining indexes. It returns the removed
// values for undo logging.
func (t *Table) deleteRowByID(id int64) ([]Value, bool) {
	row, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	delete(t.byID, id)
	for i, r := range t.rows {
		if r.id == id {
			t.rows = append(t.rows[:i:i], t.rows[i+1:]...)
			break
		}
	}
	for _, idx := range t.indexes {
		idx.remove(row)
	}
	return row.vals, true
}

// updateRowByID replaces a row's values, maintaining indexes. It returns
// the old values for undo logging.
func (t *Table) updateRowByID(id int64, vals []Value) ([]Value, error) {
	row, ok := t.byID[id]
	if !ok {
		return nil, errInternal(fmt.Sprintf("update of missing row %d", id))
	}
	for _, idx := range t.indexes {
		if !idx.Unique {
			continue
		}
		newKey := vals[idx.colPos]
		if newKey.IsNull() || IdentityEqual(newKey, row.vals[idx.colPos]) {
			continue
		}
		if post := idx.tree.lookup(newKey); len(post) > 0 {
			return nil, &Error{Code: CodeUniqueViolation,
				Message: fmt.Sprintf("duplicate key value %q violates unique index %q",
					newKey.String(), idx.Name)}
		}
	}
	old := row.vals
	for _, idx := range t.indexes {
		idx.remove(row)
	}
	row.vals = vals
	for _, idx := range t.indexes {
		idx.add(row)
	}
	return old, nil
}

func (ix *Index) add(row *storedRow) {
	key := row.vals[ix.colPos]
	if key.IsNull() {
		ix.nulls[row.id] = struct{}{}
		return
	}
	ix.tree.insert(key, row.id)
}

func (ix *Index) remove(row *storedRow) {
	key := row.vals[ix.colPos]
	if key.IsNull() {
		delete(ix.nulls, row.id)
		return
	}
	ix.tree.delete(key, row.id)
}

// buildIndex creates an Index over an existing table's rows.
func buildIndex(t *Table, name, column string, unique bool) (*Index, error) {
	pos := t.colIndex(column)
	if pos < 0 {
		return nil, errUndefinedColumn(column)
	}
	ix := &Index{
		Name:   name,
		Table:  t.Name,
		Column: t.Columns[pos].Name,
		Unique: unique,
		colPos: pos,
		tree:   newBTree(),
		nulls:  map[int64]struct{}{},
	}
	for _, row := range t.rows {
		key := row.vals[pos]
		if key.IsNull() {
			ix.nulls[row.id] = struct{}{}
			continue
		}
		if unique {
			if post := ix.tree.lookup(key); len(post) > 0 {
				return nil, &Error{Code: CodeUniqueViolation,
					Message: fmt.Sprintf("cannot create unique index %q: duplicate key %q",
						name, key.String())}
			}
		}
		ix.tree.insert(key, row.id)
	}
	return ix, nil
}

// indexOn returns the first index whose key column is at position pos,
// preferring unique indexes.
func (t *Table) indexOn(pos int) *Index {
	var found *Index
	for _, ix := range t.indexes {
		if ix.colPos != pos {
			continue
		}
		if ix.Unique {
			return ix
		}
		if found == nil {
			found = ix
		}
	}
	return found
}
