package sqldb

import (
	"fmt"
	"sync"
	"testing"

	"db2www/internal/obs"
)

func TestStatementStatsCap(t *testing.T) {
	s := NewStatementStats(3)
	for i := 0; i < 5; i++ {
		s.Record(fmt.Sprintf("d%d", i), fmt.Sprintf("SELECT %d", i), "select", 10, 1, 0, false)
	}
	if got := s.Len(); got != 4 { // 3 real shapes + the overflow bucket
		t.Fatalf("Len() = %d, want 4 (cap 3 plus %q)", got, OtherDigest)
	}
	other, ok := s.Get(OtherDigest)
	if !ok {
		t.Fatalf("no %q bucket after overflowing the cap", OtherDigest)
	}
	if other.Calls != 2 {
		t.Errorf("overflow bucket has %d calls, want 2", other.Calls)
	}
	// Cache hits on a brand-new shape past the cap also fold into _other.
	s.NoteCacheHit("d99", "SELECT 99", "select")
	if other, _ = s.Get(OtherDigest); other.CacheHits != 1 {
		t.Errorf("overflow bucket has %d cache hits, want 1", other.CacheHits)
	}
	// Known shapes keep accumulating under their own digest past the cap.
	s.Record("d0", "SELECT 0", "select", 10, 1, 0, false)
	if st, _ := s.Get("d0"); st.Calls != 2 {
		t.Errorf("d0 has %d calls after second record, want 2", st.Calls)
	}

	snap := s.Snapshot()
	if snap[len(snap)-1].Digest != OtherDigest {
		t.Errorf("Snapshot does not sort %q last: %v", OtherDigest, snap)
	}
	for _, st := range s.Top(10) {
		if st.Digest == OtherDigest {
			t.Errorf("Top() included the overflow bucket")
		}
	}
	if got := len(s.Top(10)); got != 3 {
		t.Errorf("Top(10) returned %d rows, want 3", got)
	}
}

func TestStatementStatsAggregates(t *testing.T) {
	s := NewStatementStats(0)
	for i := 0; i < 99; i++ {
		s.Record("fast", "SELECT 1", "select", 5, 1, 0, false)
	}
	s.Record("fast", "SELECT 1", "select", 30_000, 1, 2, true)
	st, ok := s.Get("fast")
	if !ok {
		t.Fatal("digest not tracked")
	}
	if st.Calls != 100 || st.Errors != 1 || st.Rows != 100 || st.ConflictRetries != 2 {
		t.Errorf("calls=%d errors=%d rows=%d retries=%d, want 100/1/100/2",
			st.Calls, st.Errors, st.Rows, st.ConflictRetries)
	}
	if st.MinMicros != 5 || st.MaxMicros != 30_000 {
		t.Errorf("min=%d max=%d, want 5/30000", st.MinMicros, st.MaxMicros)
	}
	if want := float64(99*5+30_000) / 100; st.MeanMicros != want {
		t.Errorf("mean=%f, want %f", st.MeanMicros, want)
	}
	// 99 of 100 calls land in the ≤10µs bucket, so p99 is that bucket's
	// upper bound; the one slow call is the over-p99 tail.
	if st.P99Micros != 10 {
		t.Errorf("p99=%d, want 10", st.P99Micros)
	}

	// A latency beyond the last bucket bound falls back to the observed max.
	s.Record("huge", "SELECT 2", "select", 99_999_999, 0, 0, false)
	if st, _ = s.Get("huge"); st.P99Micros != 99_999_999 {
		t.Errorf("over-range p99=%d, want the observed max", st.P99Micros)
	}

	s.Reset()
	if s.Len() != 0 {
		t.Errorf("Len() = %d after Reset, want 0", s.Len())
	}
}

// TestStatementStatsConcurrentWorkload drives an A9-style mixed workload
// (concurrent readers and writers on one table, MVCC conflicts and all)
// against a private registry and checks that every execution is accounted
// for. Run under -race this also exercises concurrent Record/Snapshot.
func TestStatementStatsConcurrentWorkload(t *testing.T) {
	prev := obs.Enabled()
	obs.SetEnabled(true)
	defer obs.SetEnabled(prev)

	db := NewDatabase("STRESS")
	stats := NewStatementStats(8)
	db.SetStatementStats(stats)

	setup := NewSession(db)
	if _, err := setup.Exec("CREATE TABLE acct (id INT PRIMARY KEY, bal INT)"); err != nil {
		t.Fatal(err)
	}
	const accounts = 64
	for i := 0; i < accounts; i++ {
		if _, err := setup.Exec(fmt.Sprintf("INSERT INTO acct (id, bal) VALUES (%d, 100)", i)); err != nil {
			t.Fatal(err)
		}
	}
	setup.Close()

	const (
		readers = 4
		writers = 2
		iters   = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sess := NewSession(db)
			defer sess.Close()
			for i := 0; i < iters; i++ {
				id := (seed*31 + i*7) % accounts
				if _, err := sess.Exec(fmt.Sprintf("SELECT bal FROM acct WHERE id = %d", id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			sess := NewSession(db)
			defer sess.Close()
			for i := 0; i < iters; i++ {
				id := (seed*17 + i*5) % accounts
				if _, err := sess.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", id)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// A scraper hammers the read side while the workload runs, the same
	// access pattern /metrics and /debug/statements produce.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				stats.Snapshot()
				stats.Top(5)
				stats.Len()
			}
		}
	}()
	wg.Wait()
	close(done)
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Literals normalize away, so the whole workload is 4 shapes: CREATE,
	// INSERT, SELECT, UPDATE — comfortably under the cap of 8.
	if got := stats.Len(); got != 4 {
		for _, st := range stats.Snapshot() {
			t.Logf("digest %s calls=%d %q", st.Digest, st.Calls, st.Statement)
		}
		t.Fatalf("tracked %d digests, want 4", got)
	}
	var total int64
	for _, st := range stats.Snapshot() {
		total += st.Calls
	}
	if want := int64(1 + accounts + readers*iters + writers*iters); total != want {
		t.Errorf("recorded %d calls, want %d (every execution accounted for)", total, want)
	}
	d, _ := DigestSQL("UPDATE acct SET bal = bal + 1 WHERE id = 0")
	st, ok := stats.Get(d)
	if !ok {
		t.Fatalf("update shape %s not tracked", d)
	}
	if st.Calls != writers*iters {
		t.Errorf("update shape has %d calls, want %d", st.Calls, writers*iters)
	}
	if st.Errors != 0 {
		t.Errorf("update shape recorded %d errors (auto-commit should retry conflicts internally)", st.Errors)
	}
}
