package sqldb

import "testing"

// FuzzParse checks the SQL parser never panics. Run the fuzzer with
//
//	go test -fuzz=FuzzParse ./internal/sqldb
//
// Under plain `go test` only the seed corpus runs.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1 ORDER BY 2 DESC LIMIT 3",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, ?)",
		"UPDATE t SET a = CASE WHEN b THEN 1 ELSE 2 END WHERE c LIKE 'p%' ESCAPE '!'",
		"DELETE FROM t WHERE a IN (SELECT a FROM u)",
		"CREATE TABLE t (a INTEGER PRIMARY KEY, b VARCHAR(10) DEFAULT 'd')",
		"ALTER TABLE t ADD COLUMN x DOUBLE",
		"SELECT 1 UNION ALL SELECT 2 ORDER BY 1",
		"SELECT -1.5e10 || 'x' FROM t a CROSS JOIN u b",
		"SELECT \"quoted ident\" FROM t -- comment\n/* block */",
		"%$#@!",
		"SELECT ((((",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = Parse(src)
		_, _ = ParseAll(src)
	})
}

// FuzzLikeMatch checks likeMatch never panics and stays consistent with
// basic invariants: a pattern equal to the string (with wildcards
// escaped away) matches, and "%" matches everything.
func FuzzLikeMatch(f *testing.F) {
	f.Add("hello", "h%o")
	f.Add("", "%")
	f.Add("a_b", "a\\_b")
	f.Add("ünïcödé", "__ï%")
	f.Fuzz(func(t *testing.T, s, pat string) {
		if _, err := likeMatch(s, pat, 0, false); err != nil {
			t.Fatalf("no-escape likeMatch returned error: %v", err)
		}
		_, _ = likeMatch(s, pat, '\\', true)
		if ok, _ := likeMatch(s, "%", 0, false); !ok {
			t.Fatalf("%% must match %q", s)
		}
	})
}

// FuzzExecRoundTrip parses whatever the fuzzer produces and, when it
// parses, executes it against a tiny database: execution must return an
// error or a result, never panic.
func FuzzExecRoundTrip(f *testing.F) {
	f.Add("SELECT a FROM t WHERE a > 0")
	f.Add("INSERT INTO t VALUES (9, 'nine')")
	f.Add("SELECT COUNT(*), MAX(b) FROM t GROUP BY a ORDER BY 1")
	f.Add("UPDATE t SET b = b || '!' WHERE a IN (1, 2)")
	f.Fuzz(func(t *testing.T, src string) {
		db := NewDatabase("FUZZ")
		s := NewSession(db)
		if _, err := s.ExecScript(
			"CREATE TABLE t (a INTEGER, b VARCHAR(10)); INSERT INTO t VALUES (1, 'one'), (2, 'two')"); err != nil {
			t.Fatal(err)
		}
		_, _ = s.Exec(src)
		_ = s.Close()
	})
}
