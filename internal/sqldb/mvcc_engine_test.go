package sqldb

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newMVCCTestDB(t *testing.T, rows int) (*Database, *Session) {
	t.Helper()
	db := NewDatabase("MVCCTEST")
	s := NewSession(db)
	t.Cleanup(func() { s.Close() })
	if _, err := s.Exec("CREATE TABLE acct (id INTEGER PRIMARY KEY, bal INTEGER)"); err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 1; i <= rows; i++ {
		if _, err := s.Exec(fmt.Sprintf("INSERT INTO acct VALUES (%d, 100)", i)); err != nil {
			t.Fatalf("seed %d: %v", i, err)
		}
	}
	return db, s
}

func queryInt(t *testing.T, s *Session, sql string) int64 {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("Exec(%q): want 1x1 result, got %dx?", sql, len(res.Rows))
	}
	return res.Rows[0][0].I
}

// TestSnapshotIsolationRepeatableRead: a transaction keeps reading the
// database as of its snapshot even while another session commits over it.
func TestSnapshotIsolationRepeatableRead(t *testing.T) {
	db, s := newMVCCTestDB(t, 2)
	reader := NewSession(db)
	defer reader.Close()

	if err := reader.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, reader, "SELECT bal FROM acct WHERE id = 1"); got != 100 {
		t.Fatalf("initial read = %d, want 100", got)
	}
	mustExec(t, s, "UPDATE acct SET bal = 250 WHERE id = 1")
	mustExec(t, s, "DELETE FROM acct WHERE id = 2")
	mustExec(t, s, "INSERT INTO acct VALUES (3, 300)")

	// The open transaction still sees the world as of its snapshot.
	if got := queryInt(t, reader, "SELECT bal FROM acct WHERE id = 1"); got != 100 {
		t.Fatalf("repeatable read broken: bal = %d, want 100", got)
	}
	if got := queryInt(t, reader, "SELECT COUNT(*) FROM acct"); got != 2 {
		t.Fatalf("snapshot row count = %d, want 2", got)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	// A fresh statement sees the committed state.
	if got := queryInt(t, reader, "SELECT bal FROM acct WHERE id = 1"); got != 250 {
		t.Fatalf("post-commit read = %d, want 250", got)
	}
	if got := queryInt(t, reader, "SELECT COUNT(*) FROM acct"); got != 2 {
		t.Fatalf("post-commit count = %d, want 2 (one deleted, one inserted)", got)
	}
}

// TestReadersDoNotBlockOnOpenWriter: with a write transaction holding
// pending versions, point reads from other sessions complete immediately
// (the heart of the A9 win; under the old engine they blocked on the
// global write lock).
func TestReadersDoNotBlockOnOpenWriter(t *testing.T) {
	db, s := newMVCCTestDB(t, 2)
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE acct SET bal = 999 WHERE id = 1")

	done := make(chan int64, 1)
	go func() {
		r := NewSession(db)
		defer r.Close()
		res, err := r.Exec("SELECT bal FROM acct WHERE id = 1")
		if err != nil {
			done <- -1
			return
		}
		done <- res.Rows[0][0].I
	}()
	select {
	case got := <-done:
		if got != 100 {
			t.Fatalf("concurrent reader saw %d, want pre-txn 100", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatalf("reader blocked behind an open write transaction")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 999 {
		t.Fatalf("bal = %d after commit, want 999", got)
	}
}

// TestFirstCommitterWinsPendingConflict: a write to a row another open
// transaction has already written is refused with SQLSTATE 40001.
func TestFirstCommitterWinsPendingConflict(t *testing.T) {
	db, s1 := newMVCCTestDB(t, 1)
	s2 := NewSession(db)
	defer s2.Close()

	if err := s1.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	if err := s2.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE acct SET bal = 1 WHERE id = 1")
	_, err := s2.Exec("UPDATE acct SET bal = 2 WHERE id = 1")
	if !IsSerializationFailure(err) {
		t.Fatalf("overlapping write: err = %v, want serialization failure", err)
	}
	if err := s2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, s1, "SELECT bal FROM acct WHERE id = 1"); got != 1 {
		t.Fatalf("bal = %d, want winner's 1", got)
	}
	if st := db.TxnStats(); st.Conflicts == 0 {
		t.Fatalf("TxnStats.Conflicts = 0 after a conflict rollback")
	}
}

// TestFirstCommitterWinsCommittedConflict: a transaction whose snapshot
// predates another's committed write to the same row loses even though
// the winner is already gone.
func TestFirstCommitterWinsCommittedConflict(t *testing.T) {
	db, s1 := newMVCCTestDB(t, 1)
	s2 := NewSession(db)
	defer s2.Close()

	if err := s2.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	// Take s2's snapshot before s1 commits.
	queryInt(t, s2, "SELECT bal FROM acct WHERE id = 1")
	mustExec(t, s1, "UPDATE acct SET bal = 500 WHERE id = 1") // auto-commits
	_, err := s2.Exec("UPDATE acct SET bal = 2 WHERE id = 1")
	if !IsSerializationFailure(err) {
		t.Fatalf("write after committed overlap: err = %v, want serialization failure", err)
	}
	if err := s2.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, s1, "SELECT bal FROM acct WHERE id = 1"); got != 500 {
		t.Fatalf("bal = %d, want 500", got)
	}
}

// TestDisjointWritersBothCommit: transactions writing different rows
// proceed in parallel and both commit.
func TestDisjointWritersBothCommit(t *testing.T) {
	db, s1 := newMVCCTestDB(t, 2)
	s2 := NewSession(db)
	defer s2.Close()

	if err := s1.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	if err := s2.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s1, "UPDATE acct SET bal = 111 WHERE id = 1")
	mustExec(t, s2, "UPDATE acct SET bal = 222 WHERE id = 2")
	if err := s1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, s1, "SELECT bal FROM acct WHERE id = 1"); got != 111 {
		t.Fatalf("row 1 = %d, want 111", got)
	}
	if got := queryInt(t, s1, "SELECT bal FROM acct WHERE id = 2"); got != 222 {
		t.Fatalf("row 2 = %d, want 222", got)
	}
}

// TestStatementAbortKeepsTransactionConsistent: a failed statement
// inside a transaction rolls back only its own effects.
func TestStatementAbortKeepsTransactionConsistent(t *testing.T) {
	_, s := newMVCCTestDB(t, 1)
	if err := s.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "UPDATE acct SET bal = 77 WHERE id = 1")
	// Multi-row insert where the second row violates the primary key:
	// the whole statement must vanish, the earlier update must stay.
	if _, err := s.Exec("INSERT INTO acct VALUES (5, 1), (1, 2)"); err == nil {
		t.Fatalf("duplicate-key insert unexpectedly succeeded")
	}
	if got := queryInt(t, s, "SELECT COUNT(*) FROM acct"); got != 1 {
		t.Fatalf("count = %d after aborted statement, want 1", got)
	}
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 77 {
		t.Fatalf("bal = %d, want earlier statement's 77", got)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 77 {
		t.Fatalf("bal = %d after commit, want 77", got)
	}
}

// TestCommitAtomicVisibility: a transaction writing several rows becomes
// visible all-or-nothing; no reader ever observes a partial commit.
func TestCommitAtomicVisibility(t *testing.T) {
	db, s := newMVCCTestDB(t, 4)
	stop := make(chan struct{})
	var torn atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewSession(db)
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := r.Exec("SELECT COUNT(DISTINCT bal) FROM acct")
				if err != nil {
					t.Error(err)
					return
				}
				// All four rows always carry the same balance: every
				// writer updates them in one transaction.
				if res.Rows[0][0].I != 1 {
					torn.Add(1)
				}
			}
		}()
	}
	for round := 0; round < 200; round++ {
		if err := s.BeginTxn(); err != nil {
			t.Fatal(err)
		}
		mustExec(t, s, fmt.Sprintf("UPDATE acct SET bal = %d", round))
		if err := s.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n := torn.Load(); n > 0 {
		t.Fatalf("%d torn reads: readers saw a partially applied transaction", n)
	}
}

// TestConcurrentOverlappingWritersAutoCommit: auto-commit increments to
// one row from many goroutines; the engine's internal retry makes every
// increment land exactly once.
func TestConcurrentOverlappingWritersAutoCommit(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	const workers, increments = 8, 25
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewSession(db)
			defer w.Close()
			for j := 0; j < increments; j++ {
				if _, err := w.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 1"); err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 100+workers*increments {
		t.Fatalf("bal = %d, want %d (lost update)", got, 100+workers*increments)
	}
}

// TestConcurrentOverlappingWritersExplicitTxn: explicit transactions
// racing on one row, application-level retry on serialization failure.
func TestConcurrentOverlappingWritersExplicitTxn(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	const workers, increments = 6, 15
	var conflicts atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewSession(db)
			defer w.Close()
			for j := 0; j < increments; j++ {
				for {
					if err := w.BeginTxn(); err != nil {
						t.Error(err)
						return
					}
					_, err := w.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 1")
					if err == nil {
						err = w.Commit()
					}
					if err == nil {
						break
					}
					w.Rollback()
					if !IsSerializationFailure(err) {
						t.Errorf("non-retryable error: %v", err)
						return
					}
					conflicts.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 100+workers*increments {
		t.Fatalf("bal = %d, want %d (lost update)", got, 100+workers*increments)
	}
	if st := db.TxnStats(); st.Conflicts != uint64(conflicts.Load()) {
		t.Fatalf("TxnStats.Conflicts = %d, application saw %d", st.Conflicts, conflicts.Load())
	}
}

// TestConcurrentDisjointWriters: writers on disjoint rows, with readers
// mixed in, under -race.
func TestConcurrentDisjointWriters(t *testing.T) {
	db, s := newMVCCTestDB(t, 8)
	const increments = 30
	var wg sync.WaitGroup
	for i := 1; i <= 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := NewSession(db)
			defer w.Close()
			for j := 0; j < increments; j++ {
				if _, err := w.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + 1 WHERE id = %d", id)); err != nil {
					t.Errorf("row %d: %v", id, err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := NewSession(db)
		defer r.Close()
		for k := 0; k < 100; k++ {
			if _, err := r.Exec("SELECT SUM(bal) FROM acct"); err != nil {
				t.Errorf("reader: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if got := queryInt(t, s, "SELECT SUM(bal) FROM acct"); got != 8*(100+increments) {
		t.Fatalf("sum = %d, want %d", got, 8*(100+increments))
	}
}

// TestVacuumReclaimsDeadVersions: burned-through versions are reclaimed
// once no snapshot can see them, and live data survives.
func TestVacuumReclaimsDeadVersions(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	for i := 0; i < 50; i++ {
		mustExec(t, s, "UPDATE acct SET bal = bal + 1 WHERE id = 1")
	}
	mustExec(t, s, "INSERT INTO acct VALUES (2, 5)")
	mustExec(t, s, "DELETE FROM acct WHERE id = 2")

	// Commit-time pruning (settleCommitted) may have reclaimed some
	// already; the sweep must get the rest.
	db.Vacuum()
	tab, err := db.Table("acct")
	if err != nil {
		t.Fatal(err)
	}
	tab.mu.RLock()
	chains := 0
	for _, r := range tab.rows {
		for v := r.head; v != nil; v = v.prev {
			chains++
		}
	}
	rows := len(tab.rows)
	tab.mu.RUnlock()
	if rows != 1 {
		t.Fatalf("%d stored rows after vacuum, want 1 (deleted row compacted)", rows)
	}
	if chains != 1 {
		t.Fatalf("%d versions after vacuum, want 1", chains)
	}
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 150 {
		t.Fatalf("bal = %d after vacuum, want 150", got)
	}
	if st := db.TxnStats(); st.VacuumedRows == 0 {
		t.Fatalf("TxnStats.VacuumedRows = 0 after churn")
	}
}

// TestVacuumRespectsLiveSnapshot: versions an open transaction can still
// see are not reclaimed.
func TestVacuumRespectsLiveSnapshot(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	reader := NewSession(db)
	defer reader.Close()
	if err := reader.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	queryInt(t, reader, "SELECT bal FROM acct WHERE id = 1") // pin snapshot
	for i := 0; i < 10; i++ {
		mustExec(t, s, "UPDATE acct SET bal = bal + 1 WHERE id = 1")
	}
	db.Vacuum()
	if got := queryInt(t, reader, "SELECT bal FROM acct WHERE id = 1"); got != 100 {
		t.Fatalf("pinned snapshot read %d after vacuum, want 100", got)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	db.Vacuum()
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 110 {
		t.Fatalf("bal = %d, want 110", got)
	}
}

// TestSerialModeBaseline: the global-write-lock baseline still executes
// transactions correctly (it is the A9 control arm).
func TestSerialModeBaseline(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	db.SetSerialMode(true)
	defer db.SetSerialMode(false)

	const workers, increments = 4, 10
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w := NewSession(db)
			defer w.Close()
			for j := 0; j < increments; j++ {
				if err := w.BeginTxn(); err != nil {
					t.Error(err)
					return
				}
				if _, err := w.Exec("UPDATE acct SET bal = bal + 1 WHERE id = 1"); err != nil {
					t.Error(err)
					w.Rollback()
					return
				}
				if err := w.Commit(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := queryInt(t, s, "SELECT bal FROM acct WHERE id = 1"); got != 100+workers*increments {
		t.Fatalf("bal = %d, want %d", got, 100+workers*increments)
	}
}

// TestDDLConflictsWithPendingWrites: ALTER/DROP TABLE refuse to run over
// another transaction's uncommitted rows instead of orphaning them.
func TestDDLConflictsWithPendingWrites(t *testing.T) {
	db, s := newMVCCTestDB(t, 1)
	w := NewSession(db)
	defer w.Close()
	if err := w.BeginTxn(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, w, "INSERT INTO acct VALUES (9, 9)")

	_, err := s.Exec("ALTER TABLE acct ADD COLUMN extra INTEGER")
	if !IsSerializationFailure(err) {
		t.Fatalf("ALTER over pending writes: err = %v, want serialization failure", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "ALTER TABLE acct ADD COLUMN extra INTEGER")
	if got := queryInt(t, s, "SELECT COUNT(*) FROM acct WHERE extra IS NULL"); got != 2 {
		t.Fatalf("backfilled NULL count = %d, want 2", got)
	}
}

// --- differential property test ---

// oracleDB is the single-threaded model: id -> balance.
type oracleDB map[int64]int64

func (o oracleDB) render() string {
	ids := make([]int64, 0, len(o))
	for id := range o {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	var sb strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&sb, "%d=%d;", id, o[id])
	}
	return sb.String()
}

func renderEngine(t *testing.T, s *Session) string {
	t.Helper()
	res, err := s.Exec("SELECT id, bal FROM acct ORDER BY id")
	if err != nil {
		t.Fatalf("render: %v", err)
	}
	var sb strings.Builder
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%d=%d;", r[0].I, r[1].I)
	}
	return sb.String()
}

// TestDifferentialRandomWorkload drives the MVCC engine and a
// single-threaded oracle through the same randomized statement stream and
// requires byte-identical rendered states after every commit, while
// background readers hammer snapshots of the same table. Transactions
// randomly commit or roll back; rollbacks must leave the oracle state
// untouched.
func TestDifferentialRandomWorkload(t *testing.T) {
	db, s := newMVCCTestDB(t, 0)
	rng := rand.New(rand.NewSource(42))
	oracle := oracleDB{}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := NewSession(db)
			defer r.Close()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Exec("SELECT COUNT(*), SUM(bal) FROM acct"); err != nil {
					t.Errorf("background reader: %v", err)
					return
				}
			}
		}()
	}

	nextID := int64(1)
	for round := 0; round < 300; round++ {
		inTxn := rng.Intn(3) == 0 // every third round is a multi-statement txn
		if inTxn {
			if err := s.BeginTxn(); err != nil {
				t.Fatal(err)
			}
		}
		shadow := oracleDB{}
		for id, v := range oracle {
			shadow[id] = v
		}
		stmts := 1
		if inTxn {
			stmts = 1 + rng.Intn(4)
		}
		failed := false
		for k := 0; k < stmts && !failed; k++ {
			switch op := rng.Intn(10); {
			case op < 4: // insert
				id := nextID
				nextID++
				bal := int64(rng.Intn(1000))
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO acct VALUES (%d, %d)", id, bal)); err != nil {
					t.Fatalf("round %d insert: %v", round, err)
				}
				shadow[id] = bal
			case op < 7: // update a random range
				pivot := rng.Int63n(nextID)
				delta := int64(rng.Intn(20)) - 10
				if _, err := s.Exec(fmt.Sprintf("UPDATE acct SET bal = bal + %d WHERE id >= %d", delta, pivot)); err != nil {
					t.Fatalf("round %d update: %v", round, err)
				}
				for id := range shadow {
					if id >= pivot {
						shadow[id] += delta
					}
				}
			case op < 9: // delete a random point
				pivot := rng.Int63n(nextID)
				if _, err := s.Exec(fmt.Sprintf("DELETE FROM acct WHERE id = %d", pivot)); err != nil {
					t.Fatalf("round %d delete: %v", round, err)
				}
				delete(shadow, pivot)
			default: // duplicate-key failure: statement-level abort
				if len(shadow) == 0 {
					continue
				}
				var id int64
				for k := range shadow {
					id = k
					break
				}
				if _, err := s.Exec(fmt.Sprintf("INSERT INTO acct VALUES (%d, 0)", id)); err == nil {
					t.Fatalf("round %d: duplicate insert succeeded", round)
				}
			}
		}
		if inTxn {
			if rng.Intn(4) == 0 { // roll back: oracle keeps its old state
				if err := s.Rollback(); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := s.Commit(); err != nil {
					t.Fatal(err)
				}
				oracle = shadow
			}
		} else {
			oracle = shadow
		}
		if got, want := renderEngine(t, s), oracle.render(); got != want {
			t.Fatalf("round %d: engine diverged from oracle\nengine: %s\noracle: %s", round, got, want)
		}
		if round%60 == 0 {
			db.Vacuum()
		}
	}
	close(stop)
	wg.Wait()
}
