package sqldb

// Vacuum: version-chain garbage collection.
//
// A version is garbage when no present or future snapshot can resolve
// it: its creator aborted, or it is buried beneath a newer committed
// version whose begin is at or below the oldest live snapshot (the
// watermark), or it is a deleted version whose end is at or below the
// watermark. Commit prunes the rows it just wrote inline
// (settleCommitted); the full-table sweep here is for everything else
// and runs from gatewayd's background ticker.

// pruneChain truncates r's chain to what some snapshot at or above wm
// can still see, removing index postings for each dropped version.
// Caller holds t.mu exclusively. Returns the number of versions
// dropped; a fully-dead row is left with head == nil for the caller's
// removeRows pass.
func (db *Database) pruneChain(t *Table, r *storedRow, wm uint64) int {
	dropped := 0
	drop := func(v *rowVersion) {
		if r.unlink(v) {
			for _, ix := range t.indexes {
				ix.removeVersion(r.id, v)
			}
			dropped++
		}
	}
	// Pass 1: versions whose creator aborted are invisible to everyone.
	// (Active or committed creators stay; purgeWrites usually beats us to
	// these — unlink's exactly-once bool keeps the race benign — but a
	// session that never rolled back cleanly lands here.)
	v := r.head
	for v != nil {
		next := v.prev
		if c := v.meta.Creator(); c != nil && c.Aborted() {
			drop(v)
		}
		v = next
	}
	// Pass 2: find the anchor — the newest committed version every
	// reader at or above wm resolves to (begin ≤ wm). Everything beneath
	// it is unreachable. Pending versions above it must stay.
	var anchor *rowVersion
	for v := r.head; v != nil; v = v.prev {
		if v.meta.Creator() != nil {
			continue
		}
		if b := v.meta.Begin(); b != 0 && b <= wm {
			anchor = v
			break
		}
	}
	if anchor == nil {
		return dropped
	}
	for v := anchor.prev; v != nil; {
		next := v.prev
		drop(v)
		v = next
	}
	// The anchor itself dies when its deletion is also below the
	// watermark and no transaction still holds a delete intent on it.
	if e := anchor.meta.End(); e != 0 && e <= wm && anchor.meta.Deleter() == nil {
		drop(anchor)
	}
	return dropped
}

// Vacuum sweeps every table, truncating version chains below the oldest
// live snapshot and compacting away fully-dead rows. It returns the
// number of row versions reclaimed. Safe to run concurrently with all
// statement execution; it takes each table latch briefly in turn.
func (db *Database) Vacuum() int {
	db.mu.RLock()
	tables := make([]*Table, 0, len(db.tables))
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	db.mu.RUnlock()
	wm := db.mvcc.OldestSnapshot()
	total := 0
	scanned := 0
	record := obsEnabled()
	for _, t := range tables {
		t.mu.Lock()
		dead := map[int64]bool{}
		visible := 0
		for _, r := range t.rows {
			// The sweep walks every chain anyway; counting its length here
			// is where the version-chain health histogram comes from.
			n := 0
			for v := r.head; v != nil; v = v.prev {
				n++
			}
			scanned += n
			if record {
				mChainLength.Observe(float64(n))
			}
			total += db.pruneChain(t, r, wm)
			if r.head == nil {
				dead[r.id] = true
			} else if r.visibleVersion(nil, ^uint64(0)) != nil {
				visible++
			}
		}
		t.removeRows(dead)
		// Refresh the planner's row-count statistics: the sweep just
		// walked every chain, so the visible count is exact right now.
		t.statRows.Store(int64(visible))
		t.statIns.Store(t.rowsInserted.Load())
		t.statDel.Store(t.rowsDeleted.Load())
		t.mu.Unlock()
	}
	db.vacuumSweeps.Add(1)
	db.vacuumScanned.Add(uint64(scanned))
	if total > 0 {
		db.vacuumRows.Add(uint64(total))
		mVacuumRows.Add(int64(total))
	}
	return total
}
