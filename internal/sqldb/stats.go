package sqldb

import (
	"fmt"
	"math"
	"strings"
)

// Cost-based planning over lightweight catalog statistics.
//
// Statistics come for free from structures the engine already maintains:
// table row counts extrapolate from the vacuum sweep's last exact count
// plus the insert/delete counters' drift since (estTableRows), and
// per-column distinct counts mirror each index B-tree's distinct-key
// size into an atomic (Index.distinct). Both read latch-free, so
// planning never blocks execution.
//
// On top of them sit three decisions, all disabled by SetPlannerEnabled
// (false) to recover the legacy engine exactly:
//
//   - access-path selection: planScanAccess scores every usable conjunct
//     and picks the index expected to examine the fewest rows, instead
//     of the legacy first-match rule (exec.go);
//   - predicate pushdown: planQuery attributes WHERE and inner-join ON
//     conjuncts to the single relation they mention and applies them at
//     that relation's scan, below the joins;
//   - join ordering: multi-relation FROM clauses of base tables are
//     joined greedily by estimated cardinality, smallest first, with the
//     output layout remapped back to declaration order.
//
// Everything here is estimation only — correctness never depends on a
// statistic being current. A conjunct that cannot be attributed safely
// stays in the residual WHERE clause, which binds and evaluates against
// the full join layout exactly as the legacy path did (preserving
// undefined-column and ambiguity errors).

// estTableRows estimates t's current visible row count: the last vacuum
// sweep's exact count plus the insert/delete counter drift since. Before
// any sweep the stat fields are zero and the estimate degrades to
// inserts minus deletes, which is exact in the absence of rollbacks.
func estTableRows(t *Table) float64 {
	n := t.statRows.Load() +
		(t.rowsInserted.Load() - t.statIns.Load()) -
		(t.rowsDeleted.Load() - t.statDel.Load())
	if n < 1 {
		return 1
	}
	return float64(n)
}

// planEstRows estimates how many candidate rows the index access p would
// examine on t.
func planEstRows(t *Table, p *indexScanPlan) float64 {
	rows := estTableRows(t)
	switch p.op {
	case "=":
		if p.ix.Unique {
			return 1
		}
		d := float64(p.ix.distinct.Load())
		if d < 1 {
			d = 1
		}
		return math.Max(1, rows/d)
	case "like":
		return math.Max(1, rows/10)
	default: // range ops
		return math.Max(1, rows/3)
	}
}

// --- query planning: pushdown + join ordering ---

// relPlan is one relation in a planned multi-relation FROM clause.
type relPlan struct {
	declIdx  int         // position in declaration order
	table    string      // base table name ("" for derived)
	t        *Table      // resolved base table (nil for derived)
	sub      *SelectStmt // derived table (nil for base)
	alias    string
	qual     string   // lower-cased binding qualifier
	cols     []string // known lower-cased output columns; nil = opaque
	site     any      // tracker identity: *TableRef or *JoinClause
	pushed   []Expr   // conjuncts applied at this relation's scan
	baseRows float64  // estimated rows before pushed filters
	est      float64  // estimated rows after pushed filters
}

// fromPlan is the planned execution of a FROM clause: relations in join
// order, the conjuncts applied at each join step, and the residual WHERE
// clause left for the post-join filter.
type fromPlan struct {
	rels      []*relPlan // execution order
	steps     [][]Expr   // steps[i]: conds applied when rels[i] joins (i >= 1)
	stepCard  []float64  // estimated output rows after joining rels[i]
	stepCost  []float64  // cumulative estimated cost through step i
	residual  Expr       // AND of unattributed conjuncts; nil when none
	reordered bool       // execution order differs from declaration order
}

// stepCond is one conjunct referencing two or more relations, applied at
// the first join step where all of them are present.
type stepCond struct {
	cond Expr
	mask map[int]bool
}

// andJoin folds conds into one AND chain (nil for an empty list). The
// wrapper nodes are freshly allocated per call, so two executions of a
// cached statement never share bind state through them.
func andJoin(conds []Expr) Expr {
	var e Expr
	for _, c := range conds {
		if e == nil {
			e = c
		} else {
			e = &Binary{Op: "AND", L: e, R: c}
		}
	}
	return e
}

// derivedCols returns the lower-cased output column names a derived
// table will expose, mirroring expandProjection's naming, or nil when
// the projection cannot be resolved statically (SELECT * or t.*).
func derivedCols(sub *SelectStmt) []string {
	if sub.Star {
		return nil
	}
	out := make([]string, 0, len(sub.Items))
	for i, it := range sub.Items {
		if it.TableStar != "" {
			return nil
		}
		switch {
		case it.Alias != "":
			out = append(out, strings.ToLower(it.Alias))
		default:
			if c, ok := it.Expr.(*ColumnRef); ok {
				out = append(out, strings.ToLower(c.Column))
			} else {
				out = append(out, fmt.Sprintf("col%d", i+1))
			}
		}
	}
	return out
}

// planQuery plans a multi-relation FROM clause: pushdown attribution,
// selectivity estimation, and greedy join ordering. It returns nil when
// the planner should not engage — planner disabled, fewer than two
// relations (the legacy single-table path already routes WHERE through
// indexes), any LEFT join (pushdown and reordering change LEFT join
// semantics), or an unresolvable table (the legacy path reports the
// error). Caller holds db.mu at least shared.
func (vw view) planQuery(sel *SelectStmt) *fromPlan {
	if vw.db.noPlanner || len(sel.From) == 0 {
		return nil
	}
	var rels []*relPlan
	var conds []Expr
	addRel := func(table string, sub *SelectStmt, alias string, site any) bool {
		rp := &relPlan{declIdx: len(rels), table: table, sub: sub, alias: alias, site: site}
		if sub != nil {
			rp.qual = strings.ToLower(alias)
			rp.cols = derivedCols(sub)
			rp.baseRows = 100 // no statistics inside a derived table
		} else {
			t, err := vw.db.table(table)
			if err != nil {
				return false
			}
			rp.t = t
			rp.qual = strings.ToLower(alias)
			if rp.qual == "" {
				rp.qual = strings.ToLower(t.Name)
			}
			rp.cols = make([]string, len(t.Columns))
			for i := range t.Columns {
				rp.cols[i] = strings.ToLower(t.Columns[i].Name)
			}
			rp.baseRows = estTableRows(t)
		}
		rels = append(rels, rp)
		return true
	}
	for i := range sel.From {
		tr := &sel.From[i]
		if !addRel(tr.Table, tr.Sub, tr.Alias, tr) {
			return nil
		}
		for j := range tr.Joins {
			jc := &tr.Joins[j]
			if jc.Kind == JoinLeft {
				return nil
			}
			if !addRel(jc.Table, jc.Sub, jc.Alias, jc) {
				return nil
			}
			if jc.On != nil {
				conds = append(conds, andConjuncts(jc.On)...)
			}
		}
	}
	if len(rels) < 2 {
		return nil
	}
	if sel.Where != nil {
		conds = append(andConjuncts(sel.Where), conds...)
	}

	// Attribute each conjunct: to one relation (pushed), to a join step
	// (multi-relation), or to the residual filter.
	var joinConds []stepCond
	var residual []Expr
	for _, cond := range conds {
		mask, ok := attributeCond(cond, rels)
		switch {
		case !ok:
			residual = append(residual, cond)
		case len(mask) == 1:
			for i := range mask {
				rels[i].pushed = append(rels[i].pushed, cond)
			}
		default:
			joinConds = append(joinConds, stepCond{cond: cond, mask: mask})
		}
	}

	// Per-relation cardinality after pushed filters.
	for _, rp := range rels {
		est := rp.baseRows
		for _, cond := range rp.pushed {
			est *= condSelectivity(rp, cond)
		}
		rp.est = math.Max(1, est)
	}

	// Greedy join ordering, base tables only (derived-table estimates are
	// guesses, and reordering around them buys little). Start from the
	// smallest estimated relation; at each step add the relation whose
	// join yields the smallest estimated output.
	order := make([]int, len(rels))
	for i := range order {
		order[i] = i
	}
	allBase := true
	for _, rp := range rels {
		if rp.sub != nil {
			allBase = false
		}
	}
	if allBase {
		start := 0
		for i, rp := range rels {
			if rp.est < rels[start].est {
				start = i
			}
		}
		chosen := map[int]bool{start: true}
		order = order[:0]
		order = append(order, start)
		acc := rels[start].est
		for len(order) < len(rels) {
			best, bestCard := -1, math.MaxFloat64
			for r := range rels {
				if chosen[r] {
					continue
				}
				card := joinCardinality(acc, rels[r], chosen, r, joinConds)
				if card < bestCard {
					best, bestCard = r, card
				}
			}
			chosen[best] = true
			order = append(order, best)
			acc = bestCard
		}
	}

	fp := &fromPlan{
		rels:     make([]*relPlan, len(order)),
		steps:    make([][]Expr, len(order)),
		stepCard: make([]float64, len(order)),
		stepCost: make([]float64, len(order)),
		residual: andJoin(residual),
	}
	for i, r := range order {
		fp.rels[i] = rels[r]
		if r != i {
			fp.reordered = true
		}
	}

	// Assign each join condition to the earliest step covering its mask,
	// and roll up cardinality/cost estimates for EXPLAIN.
	assigned := make([]bool, len(joinConds))
	covered := map[int]bool{fp.rels[0].declIdx: true}
	card := fp.rels[0].est
	cost := fp.rels[0].baseRows
	fp.stepCard[0] = card
	fp.stepCost[0] = cost
	for i := 1; i < len(fp.rels); i++ {
		rp := fp.rels[i]
		covered[rp.declIdx] = true
		sel := 1.0
		for j := range joinConds {
			if assigned[j] {
				continue
			}
			in := true
			for m := range joinConds[j].mask {
				if !covered[m] {
					in = false
					break
				}
			}
			if !in {
				continue
			}
			assigned[j] = true
			fp.steps[i] = append(fp.steps[i], joinConds[j].cond)
			sel = math.Min(sel, condJoinSelectivity(rp, joinConds[j].cond))
		}
		cost += rp.baseRows + card*rp.est // scan + nested-loop pairs
		card = math.Max(1, card*rp.est*sel)
		fp.stepCard[i] = card
		fp.stepCost[i] = cost
	}
	return fp
}

// attributeCond determines which relations cond references. ok is false
// when the conjunct must stay in the residual filter: it contains a
// subquery or aggregate, references no columns, or has a reference that
// cannot be resolved to exactly one relation (including every case the
// legacy bind would reject — ambiguity and undefined columns surface
// from the residual bind exactly as before).
func attributeCond(cond Expr, rels []*relPlan) (map[int]bool, bool) {
	bad := false
	var refs []*ColumnRef
	walkExpr(cond, func(x Expr) bool {
		switch v := x.(type) {
		case *Subquery, *ExistsExpr:
			bad = true
			return false
		case *FuncCall:
			if isAggregate(v.Name) {
				bad = true
				return false
			}
		case *ColumnRef:
			refs = append(refs, v)
		}
		return true
	})
	if bad || len(refs) == 0 {
		return nil, false
	}
	mask := map[int]bool{}
	for _, c := range refs {
		if c.Table != "" {
			q := strings.ToLower(c.Table)
			found := -1
			for i, rp := range rels {
				if rp.qual == q {
					if found >= 0 {
						return nil, false // duplicate qualifier
					}
					found = i
				}
			}
			if found < 0 {
				return nil, false
			}
			mask[found] = true
			continue
		}
		// Unqualified: require every relation's columns to be known and
		// the name to resolve to exactly one column overall.
		name := strings.ToLower(c.Column)
		found, matches := -1, 0
		for i, rp := range rels {
			if rp.cols == nil {
				return nil, false
			}
			for _, col := range rp.cols {
				if col == name {
					matches++
					found = i
				}
			}
		}
		if matches != 1 {
			return nil, false
		}
		mask[found] = true
	}
	return mask, true
}

// relEqColumn returns the column position on rp that cond (a Binary "=")
// compares against a non-column side, or -1.
func relEqColumn(rp *relPlan, cond Expr) int {
	b, ok := cond.(*Binary)
	if !ok || b.Op != "=" || rp.t == nil {
		return -1
	}
	for _, side := range [2]struct{ col, other Expr }{{b.L, b.R}, {b.R, b.L}} {
		c, ok := side.col.(*ColumnRef)
		if !ok {
			continue
		}
		if _, isCol := side.other.(*ColumnRef); isCol {
			continue
		}
		if pos := columnForQual(rp.t, rp.qual, c); pos >= 0 {
			return pos
		}
	}
	return -1
}

// condSelectivity estimates the fraction of rp's rows a pushed conjunct
// keeps.
func condSelectivity(rp *relPlan, cond Expr) float64 {
	switch x := cond.(type) {
	case *Binary:
		if x.Op == "=" {
			if pos := relEqColumn(rp, cond); pos >= 0 {
				if ix := rp.t.indexOn(pos); ix != nil {
					if ix.Unique {
						return 1 / math.Max(1, rp.baseRows)
					}
					return 1 / math.Max(1, float64(ix.distinct.Load()))
				}
			}
			return 0.1
		}
		return 1.0 / 3
	case *LikeExpr:
		return 0.25
	case *IsNullExpr:
		return 0.1
	default:
		return 1.0 / 3
	}
}

// condJoinSelectivity estimates a join condition's selectivity when rp
// joins the accumulated set: an equi-join over rp's column divides by
// that column's distinct count (its index's, when one exists).
func condJoinSelectivity(rp *relPlan, cond Expr) float64 {
	b, ok := cond.(*Binary)
	if !ok || b.Op != "=" {
		return 1.0 / 3
	}
	if rp.t != nil {
		for _, side := range [2]Expr{b.L, b.R} {
			c, ok := side.(*ColumnRef)
			if !ok {
				continue
			}
			pos := columnForQual(rp.t, rp.qual, c)
			if pos < 0 {
				continue
			}
			if ix := rp.t.indexOn(pos); ix != nil {
				return 1 / math.Max(1, float64(ix.distinct.Load()))
			}
			// No index: assume the join column is close to a key.
			return 1 / math.Max(1, rp.baseRows)
		}
	}
	return 1.0 / 3
}

// joinCardinality estimates the output rows of joining rp (index r) onto
// an accumulated set of acc rows, using the best applicable unassigned
// join condition.
func joinCardinality(acc float64, rp *relPlan, chosen map[int]bool, r int, joinConds []stepCond) float64 {
	sel := 1.0
	connected := false
	for j := range joinConds {
		in := true
		hasR := false
		for m := range joinConds[j].mask {
			if m == r {
				hasR = true
				continue
			}
			if !chosen[m] {
				in = false
				break
			}
		}
		if !in || !hasR {
			continue
		}
		connected = true
		sel = math.Min(sel, condJoinSelectivity(rp, joinConds[j].cond))
	}
	if !connected {
		return acc * rp.est
	}
	return math.Max(1, acc*rp.est*sel)
}

// estText renders an estimate annotation for EXPLAIN. The wording avoids
// the exact substrings ANALYZE uses for observed counters ("rows=",
// "examined=") so a dry EXPLAIN stays free of runtime-counter text.
func estText(card, cost float64) string {
	return fmt.Sprintf("Est: ~%.0f (cost=%.1f)", card, cost)
}
