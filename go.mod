module db2www

go 1.22
