// Quickstart: the smallest complete DB2WWW application, entirely
// in-process. It creates an in-memory database, writes a three-section
// macro (DEFINE + SQL + HTML report), and runs the engine in both modes —
// the two arrows of the paper's Figure 6.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"db2www/internal/cgi"
	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
)

const macro = `
%{ A greeting application: the form asks for a name prefix, the report
   lists matching people. %}
%define DATABASE = "QUICK"
%SQL{
SELECT name, role FROM people
WHERE name LIKE '$(PREFIX)%' ORDER BY name
%SQL_REPORT{
<H2>People matching "$(PREFIX)"</H2>
<UL>
%ROW{<LI>$(V1) — $(V2)
%}
</UL>
<P>$(ROW_NUM) match(es).</P>
%}
%}
%HTML_INPUT{<TITLE>Quickstart</TITLE>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/quickstart.d2w/report">
Name prefix: <INPUT NAME="PREFIX" VALUE="a">
<INPUT TYPE="submit" VALUE="Search">
</FORM>
%}
%HTML_REPORT{<TITLE>Quickstart Result</TITLE>
%EXEC_SQL
%}
`

func main() {
	// 1. An in-memory database, registered under the name the macro's
	// DATABASE variable selects.
	db := sqldb.NewDatabase("QUICK")
	sess := sqldb.NewSession(db)
	if _, err := sess.ExecScript(`
CREATE TABLE people (name VARCHAR(40), role VARCHAR(40));
INSERT INTO people VALUES
  ('ada', 'analyst'), ('alan', 'logician'), ('edgar', 'relational'),
  ('grace', 'compiler'), ('tim', 'web')`); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("QUICK", db)

	// 2. Parse the macro and build an engine.
	m, err := core.Parse("quickstart.d2w", macro)
	if err != nil {
		log.Fatal(err)
	}
	engine := &core.Engine{DB: gateway.NewSQLProvider()}

	// 3. Input mode: the fill-in form.
	fmt.Println("=== input mode (the HTML form) ===")
	if err := engine.Run(m, core.ModeInput, nil, os.Stdout); err != nil {
		log.Fatal(err)
	}

	// 4. Report mode: as if the user typed "a" and clicked Search.
	fmt.Println("\n=== report mode (PREFIX=a) ===")
	inputs := cgi.NewForm()
	inputs.Add("PREFIX", "a")
	if err := engine.Run(m, core.ModeReport, inputs, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
