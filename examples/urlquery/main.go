// URL query: the paper's Appendix A application, run against the full
// stack — HTTP gateway, CGI layer, macro engine, embedded DBMS — and
// driven by the browser simulator exactly as a user would: fetch the
// form (Figure 7), fill it out, submit, read the report (Figure 8),
// follow a hyperlink.
//
//	go run ./examples/urlquery            # scripted walk-through
//	go run ./examples/urlquery -serve :8080   # serve it for a real browser
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/webclient"
	"db2www/internal/workload"
)

func main() {
	serve := flag.String("serve", "", "serve on this address instead of running the scripted flow")
	flag.Parse()

	// The CELDIAL database of the Appendix A macro, with synthetic rows.
	db := sqldb.NewDatabase("CELDIAL")
	if err := workload.URLDB(db, 80, 1); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("CELDIAL", db)

	macroDir := findMacroDir()
	handler := &gateway.Handler{App: &gateway.App{
		MacroDir:    macroDir,
		Engine:      &core.Engine{DB: gateway.NewSQLProvider()},
		CacheMacros: true,
	}}

	if *serve != "" {
		fmt.Printf("serving on %s — open http://localhost%s/cgi-bin/db2www/urlquery.d2w/input\n",
			*serve, *serve)
		log.Fatal(http.ListenAndServe(*serve, handler))
	}

	// Scripted walk-through with the in-process browser.
	c := &webclient.Client{Handler: handler}
	page, err := c.Get("http://example/cgi-bin/db2www/urlquery.d2w/input")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fetched input form: %q (%d bytes)\n", page.Title(), len(page.Body))

	form, err := page.Form(0)
	if err != nil {
		log.Fatal(err)
	}
	// Figure 7 selections: search "ib" in URL and Title, show the Title
	// column, echo the SQL.
	if err := form.SetText("SEARCH", "ib"); err != nil {
		log.Fatal(err)
	}
	if err := form.ChooseRadio("SHOWSQL", "YES"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitting: %s\n", form.Submission().Encode())

	report, err := page.Submit(form)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("got report: %q with %d hyperlinks\n", report.Title(), len(report.Links()))
	fmt.Println("---- report page ----")
	fmt.Println(report.Body)
	fmt.Println("---------------------")

	// Step 4 of the paper's application model: continue from a hyperlink
	// embedded in the report (the last link returns to a fresh query).
	links := report.Links()
	next, err := report.Follow(len(links) - 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("followed %q -> %q\n", links[len(links)-1], next.Title())
}

// findMacroDir locates testdata/macros relative to the module root.
func findMacroDir() string {
	dir, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	for {
		cand := filepath.Join(dir, "testdata", "macros")
		if _, err := os.Stat(filepath.Join(cand, "urlquery.d2w")); err == nil {
			return cand
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			log.Fatal("cannot find testdata/macros; run from within the repository")
		}
		dir = parent
	}
}
