// Paging: the "scrollable cursor" idiom of Section 4.3.2, end to end
// through the gateway. The macro carries the scroll position in a hidden
// form field (RPT_STARTROW); each "Next page" submission re-issues the
// query and prints the next window of rows — multiple client-server
// interactions related purely by the variable substitution mechanism,
// with no server-side session state at all.
//
//	go run ./examples/paging
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/webclient"
	"db2www/internal/workload"
)

const macro = `
%define{
DATABASE = "CELDIAL"
RPT_MAXROWS = "5"
RPT_STARTROW = "1"
%}
%SQL{
SELECT url, title FROM urldb ORDER BY url
%SQL_REPORT{
<UL>
%ROW{<LI>#$(ROW_NUM) <A HREF="$(V1)">$(V2)</A>
%}
</UL>
<P>$(ROW_NUM) rows in all.</P>
%}
%}
%HTML_REPORT{<TITLE>Paged URL catalogue</TITLE>
<H1>URL catalogue</H1>
%EXEC_SQL
<FORM METHOD="post" ACTION="/cgi-bin/db2www/paging.d2w/report">
<INPUT TYPE="hidden" NAME="RPT_STARTROW" VALUE="$(NEXTSTART)">
<INPUT TYPE="submit" VALUE="Next page">
</FORM>
%}
`

func main() {
	db := sqldb.NewDatabase("CELDIAL")
	if err := workload.URLDB(db, 17, 4); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("CELDIAL", db)

	dir, err := os.MkdirTemp("", "paging-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(dir+"/paging.d2w", []byte(macro), 0o644); err != nil {
		log.Fatal(err)
	}
	handler := &gateway.Handler{App: &gateway.App{
		MacroDir: dir,
		Engine:   &core.Engine{DB: gateway.NewSQLProvider()},
	}}
	c := &webclient.Client{Handler: handler}

	// Walk every page. The client computes the next start position the
	// way the original applications did: current start + page size,
	// carried in the hidden field.
	start := 1
	const pageSize = 5
	for page := 1; ; page++ {
		url := fmt.Sprintf(
			"http://example/cgi-bin/db2www/paging.d2w/report?RPT_STARTROW=%d&NEXTSTART=%d",
			start, start+pageSize)
		p, err := c.Get(url)
		if err != nil {
			log.Fatal(err)
		}
		rows := strings.Count(p.Body, "<LI>")
		fmt.Printf("--- page %d (RPT_STARTROW=%d): %d rows ---\n", page, start, rows)
		for _, line := range strings.Split(p.Body, "\n") {
			if strings.HasPrefix(line, "<LI>") {
				fmt.Println("  " + line)
			}
		}
		if rows < pageSize {
			fmt.Println("last page reached")
			break
		}
		start += pageSize
	}
}
