// Report styles: the Section 7 claim made concrete — the same SQL
// section rendered through three different report layouts (the engine's
// default table, a hyperlinked bullet list, an attribute-rich HTML 3.0
// table). Only the %SQL_REPORT block differs between macros; the SQL
// command and application logic are untouched.
//
//	go run ./examples/reportstyles
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"db2www/internal/core"
	"db2www/internal/experiments"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/workload"
)

func main() {
	db := sqldb.NewDatabase("RESTYLE")
	if err := workload.URLDB(db, 6, 5); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("RESTYLE", db)

	styles := experiments.Restyles()
	engine := &core.Engine{DB: gateway.NewSQLProvider()}
	for _, name := range []string{"default-table", "bullet-list", "html3-table"} {
		m, err := core.Parse(name+".d2w", styles[name])
		if err != nil {
			log.Fatal(err)
		}
		cmd := strings.Join(strings.Fields(m.SQLSections()[0].Command), " ")
		fmt.Printf("=== style %q (SQL: %s) ===\n", name, cmd)
		if err := engine.Run(m, core.ModeReport, nil, os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
}
