// Orders: the Section 3.1.3 customer/product search, showing the
// conditional + list variable machinery building the WHERE clause, plus
// named SQL sections selected at run time through %EXEC_SQL($(sqlcmd)) —
// the user's radio button decides which query runs.
//
//	go run ./examples/orders
package main

import (
	"fmt"
	"log"

	"db2www/internal/cgi"
	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/workload"
)

const macro = `
%define{
DATABASE = "SHOP"
%list " AND " where_list
where_list = ? "p.custid = $(cust_inp)"
where_list = ? "p.product_name LIKE '$(prod_inp)%'"
where_clause = ? "WHERE $(where_list)"
%}
%SQL(products){
SELECT p.product_name, p.price, p.qty
FROM products p $(where_clause)
ORDER BY p.product_name
%SQL_REPORT{
<H2>Products</H2>
<TABLE BORDER=1>
<TR><TH>$(N1)</TH><TH>$(N2)</TH><TH>$(N3)</TH></TR>
%ROW{<TR><TD>$(V1)</TD><TD>$(V2)</TD><TD>$(V3)</TD></TR>
%}
</TABLE>
<P>$(ROW_NUM) product(s).</P>
%}
%SQL_MESSAGE{
+100 : "<P><B>No products match.</B></P>"
%}
%}
%SQL(spend){
SELECT c.name, COUNT(*) AS items, ROUND(SUM(p.price * p.qty), 2) AS total
FROM customers c JOIN products p ON c.custid = p.custid
$(where_clause)
GROUP BY c.name ORDER BY c.name
%SQL_REPORT{
<H2>Spend per customer</H2>
<UL>
%ROW{<LI>$(V.name): $(V.items) items, total $(V.total)
%}
</UL>
%}
%}
%HTML_INPUT{<TITLE>Order Search</TITLE>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/orders.d2w/report">
Customer id: <INPUT NAME="cust_inp"><BR>
Product prefix: <INPUT NAME="prod_inp"><BR>
Report:
<INPUT TYPE="radio" NAME="sqlcmd" VALUE="products" CHECKED> product list
<INPUT TYPE="radio" NAME="sqlcmd" VALUE="spend"> spend summary
<INPUT TYPE="submit" VALUE="Search">
</FORM>
%}
%HTML_REPORT{<TITLE>Order Search Result</TITLE>
%EXEC_SQL($(sqlcmd))
%}
`

func main() {
	db := sqldb.NewDatabase("SHOP")
	if err := workload.Orders(db, 8, 6, 2); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("SHOP", db)

	m, err := core.Parse("orders.d2w", macro)
	if err != nil {
		log.Fatal(err)
	}
	engine := &core.Engine{DB: gateway.NewSQLProvider()}

	show := func(title string, inputs *cgi.Form) {
		fmt.Printf("=== %s ===\n", title)
		var out printer
		if err := engine.Run(m, core.ModeReport, inputs, &out); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// The paper's exact case: cust_inp=10100, prod_inp=bikes.
	in := cgi.NewForm()
	in.Add("cust_inp", "10100")
	in.Add("prod_inp", "bikes")
	in.Add("sqlcmd", "products")
	show("products for customer 10100, prefix 'bikes'", in)

	// Only the product prefix: the custid conjunct vanishes.
	in2 := cgi.NewForm()
	in2.Add("prod_inp", "helmets")
	in2.Add("sqlcmd", "products")
	show("all customers, prefix 'helmets'", in2)

	// No constraints + the other named query: a grouped join report.
	in3 := cgi.NewForm()
	in3.Add("sqlcmd", "spend")
	show("spend summary (no WHERE clause at all)", in3)
}

// printer writes engine output straight to stdout.
type printer struct{}

func (printer) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
