// Guestbook: the paper's update path ("both read and/or update access is
// possible", Section 1) as a complete application. One macro handles
// both directions: the report page INSERTs the visitor's entry (guarded
// by an %IF validation block), then SELECTs and lists all entries. A
// %SQL_MESSAGE handler turns duplicate-signature errors into a friendly
// page instead of a DBMS diagnostic.
//
//	go run ./examples/guestbook
package main

import (
	"fmt"
	"log"
	"os"

	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/webclient"
)

const macro = `
%define DATABASE = "GUESTDB"
%SQL(add){
INSERT INTO guestbook (visitor, message) VALUES ('$(@sq:VISITOR)', '$(@sq:MESSAGE)')
%SQL_REPORT{<P>Thanks for signing, $(@html:VISITOR)!</P>
%}
%SQL_MESSAGE{
23505 : "<P><B>You have already signed the guestbook.</B></P>" : continue
%}
%}
%SQL(list){
SELECT visitor, message FROM guestbook ORDER BY visitor
%SQL_REPORT{
<H2>Entries</H2>
<DL>
%ROW{<DT>$(@html:V1)<DD>$(@html:V2)
%}
</DL>
<P>$(ROW_NUM) entries.</P>
%}
%}
%HTML_INPUT{<TITLE>Guestbook</TITLE>
<H1>Sign the guestbook</H1>
<FORM METHOD="post" ACTION="/cgi-bin/db2www/guestbook.d2w/report">
Name: <INPUT NAME="VISITOR"><BR>
Message: <INPUT NAME="MESSAGE" SIZE=40><BR>
<INPUT TYPE="submit" VALUE="Sign">
</FORM>
%}
%HTML_REPORT{<TITLE>Guestbook</TITLE>
%IF($(VISITOR))
%EXEC_SQL(add)
%ELSE
<P><B>Please supply a name.</B> Your entry was not recorded.</P>
%ENDIF
%EXEC_SQL(list)
<P><A HREF="/cgi-bin/db2www/guestbook.d2w/input">Sign again</A></P>
%}
`

func main() {
	db := sqldb.NewDatabase("GUESTDB")
	s := sqldb.NewSession(db)
	if _, err := s.ExecScript(`
CREATE TABLE guestbook (
  visitor VARCHAR(40) NOT NULL PRIMARY KEY,
  message VARCHAR(200))`); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("GUESTDB", db)

	dir, err := os.MkdirTemp("", "guestbook-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	if err := os.WriteFile(dir+"/guestbook.d2w", []byte(macro), 0o644); err != nil {
		log.Fatal(err)
	}
	handler := &gateway.Handler{App: &gateway.App{
		MacroDir: dir,
		Engine:   &core.Engine{DB: gateway.NewSQLProvider()},
	}}
	c := &webclient.Client{Handler: handler}

	sign := func(name, message string) {
		page, err := c.Get("http://example/cgi-bin/db2www/guestbook.d2w/input")
		if err != nil {
			log.Fatal(err)
		}
		form, err := page.Form(0)
		if err != nil {
			log.Fatal(err)
		}
		if name != "" {
			_ = form.SetText("VISITOR", name)
		}
		_ = form.SetText("MESSAGE", message)
		result, err := page.Submit(form)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== after signing as %q ===\n%s\n", name, result.Body)
	}

	sign("ada", "What a lovely gateway")
	sign("tim", "Forms & hyperlinks — it's the future")
	sign("ada", "Trying to sign twice")        // duplicate: custom %SQL_MESSAGE
	sign("", "No name given — %IF validation") // validation arm
	sign("o'brien", "Quotes are handled by @sq:")
}
