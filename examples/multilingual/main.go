// Multilingual: the Section 5 practical issue — multi-byte character
// support for international Web pages. The macro, the data, and the user
// input are all UTF-8; variables, LIKE patterns, and report formatting
// must treat them as characters, not bytes (note LENGTH and the '_'
// wildcard counting runes).
//
//	go run ./examples/multilingual
package main

import (
	"fmt"
	"log"
	"os"

	"db2www/internal/cgi"
	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
)

const macro = `
%define DATABASE = "WORLD"
%SQL{
SELECT greeting, lang, LENGTH(greeting) AS chars FROM greetings
WHERE lang LIKE '$(LANGPAT)%' ORDER BY lang
%SQL_REPORT{
<H2>Grüße / 挨拶 / salutations — pattern "$(LANGPAT)"</H2>
<UL>
%ROW{<LI>[$(V.lang)] $(V.greeting) ($(V.chars) characters)
%}
</UL>
%}
%}
%HTML_REPORT{<TITLE>多言語 DB2WWW</TITLE>
%EXEC_SQL
%}
`

func main() {
	db := sqldb.NewDatabase("WORLD")
	s := sqldb.NewSession(db)
	if _, err := s.ExecScript(`
CREATE TABLE greetings (greeting VARCHAR(40), lang VARCHAR(20));
INSERT INTO greetings VALUES
  ('こんにちは世界', 'ja'),
  ('Grüß Gott', 'de-AT'),
  ('Bonjour à tous', 'fr'),
  ('Γειά σου κόσμε', 'el'),
  ('Здравствуй, мир', 'ru'),
  ('你好，世界', 'zh')`); err != nil {
		log.Fatal(err)
	}
	sqldriver.Register("WORLD", db)

	m, err := core.Parse("world.d2w", macro)
	if err != nil {
		log.Fatal(err)
	}
	engine := &core.Engine{DB: gateway.NewSQLProvider()}

	for _, pat := range []string{"", "ja", "de"} {
		inputs := cgi.NewForm()
		inputs.Add("LANGPAT", pat)
		fmt.Printf("=== LANGPAT=%q ===\n", pat)
		if err := engine.Run(m, core.ModeReport, inputs, os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	// Multi-byte input travels the CGI wire format intact.
	form := cgi.NewForm()
	form.Add("LANGPAT", "日本語")
	encoded := form.Encode()
	back, err := cgi.ParseForm(encoded)
	if err != nil {
		log.Fatal(err)
	}
	v, _ := back.Get("LANGPAT")
	fmt.Printf("CGI round trip: %q -> %s -> %q\n", "日本語", encoded, v)
}
