// Package bench holds the repository-level benchmark harness: one
// testing.B benchmark per experiment in DESIGN.md's per-experiment index
// (the paper's figures E1–E12 and the A-series ablations). The benchmarks
// exercise the same code paths as cmd/benchrunner, which prints the
// corresponding report tables.
//
// Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"db2www/internal/baseline/gsql"
	"db2www/internal/baseline/rawcgi"
	"db2www/internal/baseline/wdb"
	"db2www/internal/cgi"
	"db2www/internal/core"
	"db2www/internal/experiments"
	"db2www/internal/gateway"
	"db2www/internal/htmlutil"
	"db2www/internal/macrolint"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/workload"
)

// newStack builds the standard Appendix A stack for benchmarks.
func newStack(b *testing.B, rows int) *experiments.Stack {
	b.Helper()
	st, err := experiments.NewStack(experiments.StackConfig{Rows: rows, Seed: 1, CacheMacros: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(st.Close)
	return st
}

// BenchmarkE1_Figure1_ConcurrentClients measures the full browser → HTTP
// → CGI → macro engine → SQL → report flow under parallel clients
// (Figure 1's many-browsers topology).
func BenchmarkE1_Figure1_ConcurrentClients(b *testing.B) {
	st := newStack(b, 500)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		c := st.Client()
		for pb.Next() {
			if _, err := experiments.URLQueryFlow(c); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE2_Figure2_InputMode measures input-mode macro processing:
// generating the paper's Figure 2 form.
func BenchmarkE2_Figure2_InputMode(b *testing.B) {
	src, err := os.ReadFile("testdata/macros/figure2.d2w")
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Parse("figure2.d2w", string(src))
	if err != nil {
		b.Fatal(err)
	}
	e := &core.Engine{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(m, core.ModeInput, nil, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3_Figure3_FormFillSubmit measures the client side of
// Figure 3: parsing the generated form, applying selections, and
// producing the submission pairs.
func BenchmarkE3_Figure3_FormFillSubmit(b *testing.B) {
	body, err := experiments.RenderFigure2()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		forms := htmlutil.ParseForms(body)
		if len(forms) != 1 {
			b.Fatal("form count")
		}
		if err := forms[0].SelectOptions("DBFIELD", "title", "desc"); err != nil {
			b.Fatal(err)
		}
		if forms[0].Submission().Len() != 6 {
			b.Fatal("pair count")
		}
	}
}

// BenchmarkE4_Figure4_CGIFlows measures the two invocation flows of
// Figure 4 against the in-process harness, and the fork/exec subprocess
// model in a sub-benchmark.
func BenchmarkE4_Figure4_CGIFlows(b *testing.B) {
	st := newStack(b, 500)
	qs := "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"
	getReq := &cgi.Request{Method: "GET", PathInfo: "/urlquery.d2w/report", QueryString: qs}
	postReq := &cgi.Request{Method: "POST", PathInfo: "/urlquery.d2w/report",
		ContentType: cgi.FormEncoded, Body: qs}

	b.Run("GET_QueryString", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.App.ServeCGI(getReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("POST_Stdin", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := st.App.ServeCGI(postReq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Subprocess", func(b *testing.B) {
		bin, err := buildOnce()
		if err != nil {
			b.Skipf("cannot build db2www: %v", err)
		}
		env := []string{
			"DB2WWW_MACRO_DIR=" + st.MacroDir,
			"DB2WWW_DATABASE=" + st.DBName,
			"DB2WWW_DATASET=urldb:500:1",
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cgi.InvokeProcess(bin, nil, getReq, env, 30*time.Second); err != nil {
				b.Fatal(err)
			}
		}
	})
}

var (
	buildMu   sync.Mutex
	builtBin  string
	buildErr  error
	buildDone bool
)

// buildOnce compiles cmd/db2www a single time per bench run.
func buildOnce() (string, error) {
	buildMu.Lock()
	defer buildMu.Unlock()
	if !buildDone {
		dir, err := os.MkdirTemp("", "db2www-bench-")
		if err == nil {
			builtBin, buildErr = experiments.BuildDB2WWW(dir)
		} else {
			buildErr = err
		}
		buildDone = true
	}
	return builtBin, buildErr
}

// BenchmarkE5_Figure5_MacroPipeline measures the development pipeline:
// parse + lint of the Appendix A macro.
func BenchmarkE5_Figure5_MacroPipeline(b *testing.B) {
	src, err := os.ReadFile("testdata/macros/urlquery.d2w")
	if err != nil {
		b.Fatal(err)
	}
	linter := macrolint.New()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.Parse("urlquery.d2w", string(src))
		if err != nil {
			b.Fatal(err)
		}
		if diags := linter.LintMacro(m, "urlquery.d2w"); macrolint.HasErrors(diags) {
			b.Fatal("unexpected lint errors")
		}
	}
}

// BenchmarkE6_Figure6_RuntimeModes measures input- vs report-mode
// processing of the same macro (the Figure 6 flow fork).
func BenchmarkE6_Figure6_RuntimeModes(b *testing.B) {
	m, err := core.Parse("lazy.d2w", `
%define X = "One$(Y)$(Z)"
%define Y = " Two"
%HTML_INPUT{$(X)%}
%define Z = " Three"
%HTML_REPORT{$(X)%}
`)
	if err != nil {
		b.Fatal(err)
	}
	e := &core.Engine{}
	for _, mode := range []core.Mode{core.ModeInput, core.ModeReport} {
		b.Run(mode.String(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := e.Run(m, mode, nil, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE7_Figure78_AppendixA measures the complete Appendix A
// application turn: form fetch, fill, submit, report with hyperlinks.
func BenchmarkE7_Figure78_AppendixA(b *testing.B) {
	st := newStack(b, 500)
	c := st.Client()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.URLQueryFlow(c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8_WhereClause measures the Section 3.1.3 conditional+list
// WHERE-clause construction.
func BenchmarkE8_WhereClause(b *testing.B) {
	m, err := core.Parse("where.d2w", `
%define{
%list " AND " where_list
where_list = ? "custid = $(cust_inp)"
where_list = ? "product_name LIKE '$(prod_inp)%'"
where_clause = ? "WHERE $(where_list)"
%}
%HTML_INPUT{$(where_clause)%}
`)
	if err != nil {
		b.Fatal(err)
	}
	in := cgi.NewForm()
	in.Add("cust_inp", "10100")
	in.Add("prod_inp", "bikes")
	e := &core.Engine{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := e.Run(m, core.ModeInput, in, &buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9_TransactionModes measures report processing of a
// three-statement update macro under the two Section 5 transaction modes.
func BenchmarkE9_TransactionModes(b *testing.B) {
	for _, mode := range []struct {
		name string
		txn  core.TxnMode
	}{{"AutoCommit", core.TxnAutoCommit}, {"SingleTxn", core.TxnSingle}} {
		b.Run(mode.name, func(b *testing.B) {
			db := sqldb.NewDatabase("BENCHTXN")
			s := sqldb.NewSession(db)
			if _, err := s.ExecScript("CREATE TABLE t (id INTEGER, v VARCHAR(20))"); err != nil {
				b.Fatal(err)
			}
			sqldriver.Register("BENCHTXN", db)
			defer sqldriver.Unregister("BENCHTXN")
			m, err := core.Parse("txn.d2w", `
%define DATABASE = "BENCHTXN"
%SQL{INSERT INTO t VALUES (1, 'a')%}
%SQL{UPDATE t SET v = 'b' WHERE id = 1%}
%SQL{DELETE FROM t WHERE id = 1%}
%HTML_REPORT{%EXEC_SQL%}
`)
			if err != nil {
				b.Fatal(err)
			}
			eng := &core.Engine{DB: gateway.NewSQLProvider(), Txn: mode.txn}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := eng.Run(m, core.ModeReport, nil, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10_Baselines measures the same report request on all four
// systems of the Section 6 comparison.
func BenchmarkE10_Baselines(b *testing.B) {
	db := sqldb.NewDatabase("BENCHBASE")
	if err := workload.URLDB(db, 500, 1); err != nil {
		b.Fatal(err)
	}
	sqldriver.Register("BENCHBASE", db)
	b.Cleanup(func() { sqldriver.Unregister("BENCHBASE") })

	st, err := experiments.NewStack(experiments.StackConfig{
		DBName: "BENCHCEL", Rows: 500, Seed: 1, CacheMacros: true})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(st.Close)
	// Retarget the stack macro at its own database name.
	src, err := os.ReadFile("testdata/macros/urlquery.d2w")
	if err != nil {
		b.Fatal(err)
	}
	macro := bytes.Replace(src, []byte(`DATABASE = "CELDIAL"`), []byte(`DATABASE = "BENCHCEL"`), 1)
	if err := st.WriteMacro("urlquery.d2w", string(macro)); err != nil {
		b.Fatal(err)
	}

	proc, err := gsql.ParseProc(`
HEADING "URL Query"
INPUT SEARCH text
DATABASE BENCHBASE
SQL SELECT url, title FROM urldb WHERE title LIKE '%$SEARCH%' ORDER BY title
`)
	if err != nil {
		b.Fatal(err)
	}
	fdf, err := wdb.GenerateFDF("BENCHBASE", "urldb")
	if err != nil {
		b.Fatal(err)
	}
	req := &cgi.Request{Method: "GET", PathInfo: "/urlquery.d2w/report",
		QueryString: "SEARCH=ib&USE_URL=yes&USE_TITLE=yes&DBFIELDS=title"}
	systems := []struct {
		name string
		h    cgi.Handler
	}{
		{"DB2WWW", st.App},
		{"GSQL", &gsql.App{Proc: proc}},
		{"WDB", &wdb.App{FDF: fdf}},
		{"RawCGI", &rawcgi.App{Database: "BENCHBASE"}},
	}
	for _, sys := range systems {
		b.Run(sys.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				resp, err := sys.h.ServeCGI(req)
				if err != nil || resp.Status != 200 {
					b.Fatalf("status %d err %v", resp.Status, err)
				}
			}
		})
	}
}

// BenchmarkE11_Restyle measures report rendering under the three
// Section 7 report styles over identical SQL.
func BenchmarkE11_Restyle(b *testing.B) {
	db := sqldb.NewDatabase("RESTYLE")
	if err := workload.URLDB(db, 200, 1); err != nil {
		b.Fatal(err)
	}
	sqldriver.Register("RESTYLE", db)
	b.Cleanup(func() { sqldriver.Unregister("RESTYLE") })
	for name, src := range experiments.Restyles() {
		m, err := core.Parse(name, src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			eng := &core.Engine{DB: gateway.NewSQLProvider()}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := eng.Run(m, core.ModeReport, nil, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE12_ListVariables measures list-variable expansion at
// increasing input fan-out.
func BenchmarkE12_ListVariables(b *testing.B) {
	m, err := core.Parse("list.d2w", `
%define{
%list " OR " conds
%}
%HTML_INPUT{WHERE $(conds)%}
`)
	if err != nil {
		b.Fatal(err)
	}
	e := &core.Engine{}
	for _, k := range []int{1, 16, 256} {
		in := cgi.NewForm()
		for i := 0; i < k; i++ {
			in.Add("conds", fmt.Sprintf("col%d = 'v%d'", i, i))
		}
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := e.Run(m, core.ModeInput, in, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA1_LazyVsEager measures page generation when k of 1000
// defined variables are actually referenced: lazy evaluation pays only
// for k (the k=1000 row is what an eager evaluator always pays).
func BenchmarkA1_LazyVsEager(b *testing.B) {
	var defs bytes.Buffer
	defs.WriteString("%define{\nv0 = \"x\"\n")
	for i := 1; i < 1000; i++ {
		fmt.Fprintf(&defs, "v%d = \"$(v%d).\"\n", i, i-1)
	}
	defs.WriteString("%}\n")
	for _, k := range []int{1, 100, 1000} {
		var refs bytes.Buffer
		for i := 0; i < k; i++ {
			fmt.Fprintf(&refs, "$(v%d)", i%32)
		}
		m, err := core.Parse("a1.d2w", defs.String()+"%HTML_INPUT{"+refs.String()+"%}")
		if err != nil {
			b.Fatal(err)
		}
		e := &core.Engine{}
		b.Run(fmt.Sprintf("used=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := e.Run(m, core.ModeInput, nil, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA2_ParseCache measures per-request cost with the parsed-macro
// cache off (the faithful re-read-per-process CGI model) and on.
func BenchmarkA2_ParseCache(b *testing.B) {
	req := &cgi.Request{Method: "GET", PathInfo: "/urlquery.d2w/input"}
	for _, cache := range []struct {
		name string
		on   bool
	}{{"Off", false}, {"On", true}} {
		b.Run(cache.name, func(b *testing.B) {
			st, err := experiments.NewStack(experiments.StackConfig{
				DBName: "BENCHA2", Rows: 50, Seed: 1, CacheMacros: cache.on})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := st.App.ServeCGI(req)
				if err != nil || resp.Status != 200 {
					b.Fatalf("status %d err %v", resp.Status, err)
				}
			}
		})
	}
}

// BenchmarkA3_ReportFormats compares the default table format with a
// custom %SQL_REPORT block at 1000 result rows.
func BenchmarkA3_ReportFormats(b *testing.B) {
	db := sqldb.NewDatabase("RESTYLE")
	if err := workload.URLDB(db, 1000, 1); err != nil {
		b.Fatal(err)
	}
	sqldriver.Register("RESTYLE", db)
	b.Cleanup(func() { sqldriver.Unregister("RESTYLE") })
	styles := experiments.Restyles()
	for _, name := range []string{"default-table", "bullet-list"} {
		m, err := core.Parse(name, styles[name])
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			eng := &core.Engine{DB: gateway.NewSQLProvider()}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := eng.Run(m, core.ModeReport, nil, &buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkA5_IndexVsScan measures the sqldb access paths under the macro
// workload's characteristic predicates.
func BenchmarkA5_IndexVsScan(b *testing.B) {
	db := sqldb.NewDatabase("A5BENCH")
	if err := workload.URLDB(db, 10000, 1); err != nil {
		b.Fatal(err)
	}
	s := sqldb.NewSession(db)
	defer s.Close()
	res, err := s.Exec("SELECT url FROM urldb ORDER BY url LIMIT 1 OFFSET 5000")
	if err != nil {
		b.Fatal(err)
	}
	key := res.Rows[0][0]
	for _, idx := range []struct {
		name string
		on   bool
	}{{"IndexScan", true}, {"FullScan", false}} {
		b.Run(idx.name, func(b *testing.B) {
			db.SetIndexScansEnabled(idx.on)
			defer db.SetIndexScansEnabled(true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec("SELECT title FROM urldb WHERE url = ?", key); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
