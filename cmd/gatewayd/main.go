// Command gatewayd is the Web server of the paper's Figure 1: it serves
// an organisation's static pages and routes /cgi-bin/db2www URLs to the
// DB2WWW application — in-process by default, or by forking a real CGI
// subprocess per request with -cgi (the faithful 1996 process model).
//
//	gatewayd -addr :8080 -macros ./macros -dataset urldb:500:1
//	gatewayd -addr :8080 -macros ./macros -cgi ./db2www
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"db2www/internal/core"
	"db2www/internal/flight"
	"db2www/internal/gateway"
	"db2www/internal/macrolint"
	"db2www/internal/obs"
	"db2www/internal/obs/history"
	"db2www/internal/qcache"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/sqlsema"
	"db2www/internal/workload"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		macros   = flag.String("macros", "./macros", "macro root directory")
		docroot  = flag.String("docroot", "", "static document root (optional)")
		database = flag.String("database", "CELDIAL", "in-memory database name")
		dataset  = flag.String("dataset", "urldb", "dataset spec (see workload.Load)")
		txn      = flag.String("txn", "auto", "transaction mode: auto or single")
		cache    = flag.Bool("cache", true, "cache parsed macros")
		maxRows  = flag.Int("maxrows", 0, "default report row cap (0 = unlimited)")
		cgiProg  = flag.String("cgi", "", "path to a db2www CGI executable; enables subprocess mode")
		lintMode = flag.String("lint", "warn", "macro lint: off, warn (preflight + log findings), or strict (refuse to start or serve on lint errors)")
		auth     = flag.String("auth", "", "user:password for HTTP basic auth (optional)")
		load     = flag.String("load", "", "restore a database dump instead of generating -dataset")
		save     = flag.String("save", "", "dump the database to this file on SIGINT/SIGTERM")
		logPath  = flag.String("accesslog", "", "write access log lines to this file; also enables /server-status")
		logFmt   = flag.String("access-log-format", "clf", "access log line format: clf (NCSA Common Log Format) or json (one object per line with trace/flight/digest/latency fields)")

		isolation      = flag.String("isolation", "snapshot", "concurrency control: snapshot (MVCC, readers never block) or serial (global-write-lock baseline)")
		vacuumInterval = flag.Duration("vacuum-interval", 5*time.Second, "background version-chain vacuum period (0 disables)")

		qcacheOn    = flag.Bool("qcache", false, "cache %EXEC_SQL query results (LRU, table-version invalidation)")
		qcacheBytes = flag.Int64("qcache-bytes", 64<<20, "query cache byte budget")
		qcacheTTL   = flag.Duration("qcache-ttl", 0, "query cache entry lifetime (0 = no TTL, rely on invalidation)")

		historyOn        = flag.Bool("history", true, "embedded metrics time-series: self-scrape the registry into /debug/history, /debug/dash, and the alert engine")
		historyInterval  = flag.Duration("history-interval", history.DefaultInterval, "history scrape period")
		historyRetention = flag.Duration("history-retention", history.DefaultRetention, "history sample retention span")
		alertRules       = flag.String("alert-rules", "", "alert rules file (one rule per line, see docs/HISTORY.md); empty uses the built-in defaults")

		flightOn     = flag.Bool("flight", true, "flight recorder: per-request records with tail-based sampling, SLO burn rates, /debug/flight")
		flightDir    = flag.String("flight-dir", "", "persist kept flight records (rotating JSONL) and anomaly pprof snapshots here")
		flightSample = flag.Float64("flight-sample", 0.01, "keep probability for healthy requests (errors and slow requests are always kept)")
		sloTarget    = flag.Float64("slo-target", 0.999, "availability SLO: fraction of requests that must not be 5xx")
		sloLatency   = flag.Duration("slo-latency", 250*time.Millisecond, "latency SLO threshold: requests over it count against the latency budget")

		version          = flag.Bool("version", false, "print build information and exit")
		slowlogPath      = flag.String("slowlog", "", "write slow-request lines (trace, spans, SQL) to this file; \"-\" for stderr")
		slowlogThreshold = flag.Duration("slowlog-threshold", 200*time.Millisecond, "log requests slower than this")
		traceRingSize    = flag.Int("trace-ring", 64, "recent request traces kept for /server-status (0 disables)")
		pprofAddr        = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060; empty disables)")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("gatewayd"))
		return
	}

	var qc *qcache.Cache
	if *qcacheOn {
		qc = qcache.New(*qcacheBytes, *qcacheTTL)
	}

	h := &gateway.Handler{DocRoot: *docroot}
	var ring *obs.Ring
	if *traceRingSize > 0 {
		ring = obs.NewRing(*traceRingSize)
		h.TraceRing = ring
	}
	if *slowlogPath != "" {
		out := io.Writer(os.Stderr)
		if *slowlogPath != "-" {
			f, err := os.OpenFile(*slowlogPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				log.Fatalf("opening slow log: %v", err)
			}
			defer f.Close()
			out = f
		}
		h.SlowLog = obs.NewSlowLog(out, *slowlogThreshold)
	}
	var rec *flight.Recorder
	if *flightOn {
		var err error
		rec, err = flight.New(flight.Config{
			SampleRate: *flightSample,
			// The "slow" cut-off is shared with the slow-query log: one
			// definition of slow across the whole observability stack.
			SlowThreshold: *slowlogThreshold,
			Dir:           *flightDir,
			SLO: flight.SLOConfig{
				AvailabilityTarget: *sloTarget,
				LatencyThreshold:   *sloLatency,
			},
			Metrics: obs.Default,
		})
		if err != nil {
			log.Fatalf("gatewayd: flight recorder: %v", err)
		}
		defer rec.Close()
		h.Flight = rec
		rec.SLO().ExportTo(obs.Default)
	}
	obs.RegisterRuntimeMetrics(obs.Default)
	obs.RegisterBuildInfo(obs.Default)
	var app *gateway.App
	var engineDB *sqldb.Database
	if *cgiProg != "" {
		h.CGIProgram = *cgiProg
		h.CGIEnv = []string{
			"DB2WWW_MACRO_DIR=" + *macros,
			"DB2WWW_DATABASE=" + *database,
			"DB2WWW_DATASET=" + *dataset,
		}
		if *txn == "single" {
			h.CGIEnv = append(h.CGIEnv, "DB2WWW_TXN=single")
		}
		if *qcacheOn {
			// Each CGI subprocess gets its own cache; with one request per
			// process it never hits, which is exactly the process-model cost
			// the in-process mode exists to escape. Pass the knobs anyway so
			// the configuration is honest about what was asked for.
			h.CGIEnv = append(h.CGIEnv,
				"DB2WWW_QCACHE=1",
				"DB2WWW_QCACHE_BYTES="+strconv.FormatInt(*qcacheBytes, 10),
				"DB2WWW_QCACHE_TTL="+qcacheTTL.String(),
			)
		}
	} else {
		db := sqldb.NewDatabase(*database)
		switch *isolation {
		case "snapshot":
		case "serial":
			db.SetSerialMode(true)
		default:
			log.Fatalf("gatewayd: -isolation wants snapshot or serial, got %q", *isolation)
		}
		if *load != "" {
			if err := sqldb.RestoreFromFile(db, *load); err != nil {
				log.Fatalf("restoring %s: %v", *load, err)
			}
		} else if err := workload.Load(db, *dataset); err != nil {
			log.Fatalf("loading dataset: %v", err)
		}
		sqldriver.Register(*database, db)
		engineDB = db
		if *vacuumInterval > 0 {
			go func() {
				for range time.Tick(*vacuumInterval) {
					db.Vacuum()
				}
			}()
		}
		if *save != "" {
			saveOnSignal(db, *save)
		}
		engine := &core.Engine{
			DB:       qcache.Wrap(gateway.NewSQLProvider(), qc),
			Commands: core.NewCommandRegistry(),
			MaxRows:  *maxRows,
		}
		if *txn == "single" {
			engine.Txn = core.TxnSingle
		}
		app = &gateway.App{MacroDir: *macros, Engine: engine, CacheMacros: *cache}
		h.App = app
	}
	// Lint preflight: analyze the whole macro corpus before accepting a
	// single request, so a broken or injectable macro is a deploy-time
	// failure instead of a runtime one. The same linter then re-checks
	// each macro as it is (re)loaded, catching files edited after boot.
	var preFiles, preErrs, preWarns int
	switch *lintMode {
	case "off":
	case "warn", "strict":
		macrolint.RegisterMetrics()
		linter := macrolint.New()
		if engineDB != nil {
			// In-process mode lints against the live catalog: a macro that
			// names a table or column the engine does not have is a
			// deploy-time error, not a runtime 42703.
			linter.Schema = sqlsema.FromDatabase(engineDB)
		}
		files, diags, err := linter.LintDir(*macros)
		if err != nil {
			log.Fatalf("gatewayd: lint preflight of %s: %v", *macros, err)
		}
		macrolint.Record(diags)
		for _, d := range diags {
			log.Printf("gatewayd: lint: %s", d)
		}
		errs, warns, _ := macrolint.Counts(diags)
		preFiles, preErrs, preWarns = len(files), errs, warns
		fmt.Printf("gatewayd: lint preflight: %d macro(s), %d error(s), %d warning(s)\n",
			preFiles, preErrs, preWarns)
		if *lintMode == "strict" && preErrs > 0 {
			log.Fatalf("gatewayd: -lint strict: refusing to serve %s with %d error-severity finding(s)",
				*macros, preErrs)
		}
		if app != nil {
			app.Lint = linter
			app.LintStrict = *lintMode == "strict"
		}
	default:
		log.Fatalf("gatewayd: -lint wants off, warn, or strict, got %q", *lintMode)
	}
	if *auth != "" {
		user, pass, ok := strings.Cut(*auth, ":")
		if !ok {
			log.Fatal("-auth wants user:password")
		}
		h.Authenticate = gateway.BasicAuthUsers(map[string]string{user: pass})
	}

	// The access-log middleware always wraps the handler so /server-status
	// is available; -accesslog additionally writes the CLF lines to disk.
	var logOut io.Writer
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("opening access log: %v", err)
		}
		defer f.Close()
		logOut = f
		fmt.Printf("gatewayd: access log at %s, stats at /server-status\n", *logPath)
	}
	al := gateway.NewAccessLog(h, logOut)
	switch *logFmt {
	case "clf", "json":
		al.Format = *logFmt
	default:
		log.Fatalf("gatewayd: -access-log-format wants clf or json, got %q", *logFmt)
	}
	var root http.Handler = al
	al.AddStatusSection("Build info", obs.BuildKV)
	if rec != nil {
		al.Handle("/debug/flight", rec.Handler())
		al.AddStatusSection("SLO burn rates", rec.SLO().StatusRows)
	}
	if ring != nil {
		al.AddStatusSection("Recent traces", ring.StatusRows)
	}
	if app != nil {
		al.AddStatusSection("Macro cache", func() [][2]string {
			hits, misses := app.MacroCacheStats()
			return [][2]string{
				{"Hits", strconv.FormatInt(hits, 10)},
				{"Misses", strconv.FormatInt(misses, 10)},
			}
		})
	}
	if *lintMode != "off" {
		mode := *lintMode
		schemaTables := 0
		if engineDB != nil {
			schemaTables = len(engineDB.SchemaSnapshot())
		}
		al.AddStatusSection("Macro lint", func() [][2]string {
			rows := [][2]string{
				{"Mode", mode},
				{"Schema tables", strconv.Itoa(schemaTables)},
				{"Preflight macros", strconv.Itoa(preFiles)},
				{"Preflight errors", strconv.Itoa(preErrs)},
				{"Preflight warnings", strconv.Itoa(preWarns)},
			}
			if app != nil {
				loads, errs, warns, infos, rejected := app.LintStats()
				rows = append(rows,
					[2]string{"Loads linted", strconv.FormatInt(loads, 10)},
					[2]string{"Load errors", strconv.FormatInt(errs, 10)},
					[2]string{"Load warnings", strconv.FormatInt(warns, 10)},
					[2]string{"Load infos", strconv.FormatInt(infos, 10)},
					[2]string{"Loads refused", strconv.FormatInt(rejected, 10)},
				)
			}
			return rows
		})
	}
	if engineDB != nil {
		mode := *isolation
		al.AddStatusSection("Transactions", func() [][2]string {
			st := engineDB.TxnStats()
			return [][2]string{
				{"Isolation", mode},
				{"Active snapshots", strconv.Itoa(st.ActiveSnapshots)},
				{"Oldest snapshot", strconv.FormatUint(st.OldestSnapshot, 10)},
				{"Oldest snapshot age", st.OldestSnapshotAge.String()},
				{"Commit sequence", strconv.FormatUint(st.CommitSeq, 10)},
				{"Commits", strconv.FormatUint(st.Commits, 10)},
				{"Rollbacks", strconv.FormatUint(st.Rollbacks, 10)},
				{"Conflicts", strconv.FormatUint(st.Conflicts, 10)},
				{"Conflict retries", strconv.FormatUint(st.ConflictRetries, 10)},
				{"Vacuumed versions", strconv.FormatUint(st.VacuumedRows, 10)},
				{"Vacuum sweeps", strconv.FormatUint(st.VacuumSweeps, 10)},
			}
		})
		al.AddStatusSection("Statements", func() [][2]string {
			top := engineDB.StatementStats().Top(10)
			rows := make([][2]string, 0, len(top)+1)
			rows = append(rows, [2]string{"Tracked digests",
				strconv.Itoa(engineDB.StatementStats().Len())})
			for _, st := range top {
				rows = append(rows, [2]string{
					st.Digest,
					fmt.Sprintf("calls=%d p99=%dµs rows=%d hits=%d retries=%d  %s",
						st.Calls, st.P99Micros, st.Rows, st.CacheHits,
						st.ConflictRetries, obs.TruncateSQL(st.Statement, 120)),
				})
			}
			return rows
		})
		al.AddStatusSection("Planner", func() [][2]string {
			st := engineDB.PlanCacheStats()
			return [][2]string{
				{"Plan cache", map[bool]string{true: "enabled", false: "disabled"}[st.Enabled]},
				{"Cost-based planner", map[bool]string{true: "enabled", false: "disabled"}[st.Planner]},
				{"Cached plans", fmt.Sprintf("%d / %d", st.Size, st.Cap)},
				{"Hits", strconv.FormatUint(st.Hits, 10)},
				{"Misses", strconv.FormatUint(st.Misses, 10)},
				{"Bypasses", strconv.FormatUint(st.Bypasses, 10)},
				{"Invalidations", strconv.FormatUint(st.Invalidations, 10)},
			}
		})
		al.AddStatusSection("Storage", func() [][2]string {
			var rows [][2]string
			for _, ts := range engineDB.TableStatsSnapshot() {
				rows = append(rows, [2]string{
					ts.Name,
					fmt.Sprintf("rows=%d versions=%d max_chain=%d seq=%d idx=%d read=%d ins=%d upd=%d del=%d retries=%d",
						ts.Rows, ts.Versions, ts.MaxChain, ts.SeqScans,
						ts.IndexScans, ts.RowsRead, ts.RowsInserted,
						ts.RowsUpdated, ts.RowsDeleted, ts.ConflictRetries),
				})
			}
			return rows
		})
		al.Handle("/debug/statements", gateway.StatementsHandler(engineDB))
		sqldb.RegisterMetrics(engineDB)
	}
	if qc != nil {
		al.AddStatusSection("Query cache", func() [][2]string {
			st := qc.Stats()
			return [][2]string{
				{"Hits", strconv.FormatInt(st.Hits, 10)},
				{"Misses", strconv.FormatInt(st.Misses, 10)},
				{"Hit ratio", fmt.Sprintf("%.3f", st.HitRatio())},
				{"Deduplicated", strconv.FormatInt(st.Dedups, 10)},
				{"Stores", strconv.FormatInt(st.Stores, 10)},
				{"Evictions", strconv.FormatInt(st.Evictions, 10)},
				{"Invalidations", strconv.FormatInt(st.Invalidations, 10)},
				{"Expirations", strconv.FormatInt(st.Expirations, 10)},
				{"Bypasses", strconv.FormatInt(st.Bypasses, 10)},
				{"Uncacheable", strconv.FormatInt(st.Uncacheable, 10)},
				{"Entries", strconv.Itoa(qc.Len())},
				{"Bytes", strconv.FormatInt(qc.Bytes(), 10)},
			}
		})
	}

	// History: the embedded time-series self-scraping the same registry
	// /metrics exposes, with the alert engine on top. Critical firings
	// trigger the flight recorder's anomaly pprof capture — the alert says
	// when it got bad, the profile says what the process was doing.
	var hist *history.Store
	if *historyOn {
		rules := history.DefaultRules()
		if *alertRules != "" {
			src, err := os.ReadFile(*alertRules)
			if err != nil {
				log.Fatalf("gatewayd: reading -alert-rules: %v", err)
			}
			rules, err = history.ParseRules(string(src))
			if err != nil {
				log.Fatalf("gatewayd: parsing -alert-rules %s: %v", *alertRules, err)
			}
		}
		hist = history.New(history.Config{
			Registry:  obs.Default,
			Interval:  *historyInterval,
			Retention: *historyRetention,
			Rules:     rules,
			OnAlert: func(r history.Rule, v float64) {
				log.Printf("gatewayd: alert firing: %s (value %.4g)", r.String(), v)
				if r.Severity == history.SeverityCritical {
					rec.CaptureAnomaly("alert:" + r.Name)
				}
			},
		})
		hist.Start()
		defer hist.Close()
		al.Handle("/debug/history", hist.Handler())
		al.Handle("/debug/dash", hist.Dashboard())
		al.AddStatusSection("History", hist.StatusRows)
	}

	// Liveness and readiness: /healthz answers as long as the process
	// serves; /readyz runs the registered checks with per-check detail.
	health := gateway.NewHealth()
	if engineDB != nil {
		health.AddCheck("db-open", func() error {
			if len(engineDB.SchemaSnapshot()) == 0 {
				return errors.New("no tables loaded")
			}
			return nil
		})
	}
	if *lintMode != "off" {
		health.AddCheck("lint-preflight", func() error {
			if preErrs > 0 {
				return fmt.Errorf("%d lint error(s) in preflight", preErrs)
			}
			return nil
		})
	}
	if hist != nil {
		health.AddCheck("no-critical-alert", func() error {
			if hist.CriticalFiring() {
				return errors.New("critical alert rule firing")
			}
			return nil
		})
	}
	al.Handle("/healthz", health.Liveness())
	al.Handle("/readyz", health.Readiness())

	if *pprofAddr != "" {
		// The pprof import registers on http.DefaultServeMux, which the
		// main listener never serves — profiling stays on its own address.
		go func() {
			log.Printf("gatewayd: pprof at http://%s/debug/pprof/", *pprofAddr)
			log.Fatal(http.ListenAndServe(*pprofAddr, nil))
		}()
	}

	fmt.Printf("gatewayd: serving macros from %s on %s\n", *macros, *addr)
	fmt.Printf("gatewayd: metrics at /metrics, status at /server-status\n")
	if rec != nil {
		fmt.Printf("gatewayd: flight records at /debug/flight (sample %g, slow >= %s)\n",
			*flightSample, rec.SlowThreshold())
	}
	if hist != nil {
		fmt.Printf("gatewayd: history at /debug/history, dashboard at /debug/dash (scrape %s, retain %s)\n",
			hist.Interval(), hist.Retention())
	}
	fmt.Printf("gatewayd: health at /healthz, readiness at /readyz\n")
	fmt.Printf("gatewayd: try http://localhost%s/cgi-bin/db2www/urlquery.d2w/input\n",
		ensureColon(*addr))
	log.Fatal(http.ListenAndServe(*addr, root))
}

// saveOnSignal dumps the database to path when the process receives
// SIGINT or SIGTERM, then exits — a poor man's durability story for a
// demo server (the paper's deployments delegated durability to DB2).
func saveOnSignal(db *sqldb.Database, path string) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		fmt.Printf("\ngatewayd: %v — dumping database to %s\n", sig, path)
		if err := db.DumpToFile(path); err != nil {
			log.Printf("gatewayd: dump failed: %v", err)
			os.Exit(1)
		}
		os.Exit(0)
	}()
}

func ensureColon(addr string) string {
	if strings.HasPrefix(addr, ":") {
		return addr
	}
	if i := strings.LastIndexByte(addr, ':'); i >= 0 {
		return addr[i:]
	}
	return ":" + addr
}
