// Command benchrunner regenerates every experiment in DESIGN.md's
// per-experiment index: the reproductions of the paper's figures and
// worked examples (E1–E12) and the design-choice ablations (A1–A12).
//
//	benchrunner                  run everything at default scale
//	benchrunner -exp e7,e8       run selected experiments
//	benchrunner -rows 2000 -requests 1000
//	benchrunner -json results.json   also write machine-readable results
//	benchrunner -soak 60s        A12 soak-phase duration
//	benchrunner -write-golden    (re)generate the golden HTML files
//	benchrunner -no-subprocess   skip building cmd/db2www for E4
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"db2www/internal/experiments"
	"db2www/internal/obs"
	"db2www/internal/obs/history"
	"db2www/internal/sqldb"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "comma-separated experiment ids (e1..e12, a1..a12) or all")
		rows         = flag.Int("rows", 500, "urldb dataset rows")
		requests     = flag.Int("requests", 200, "requests per measurement")
		seed         = flag.Int64("seed", 1, "dataset seed")
		soak         = flag.Duration("soak", 0, "A12 soak-phase duration (0 = the experiment's default)")
		jsonPath     = flag.String("json", "", "write machine-readable results to this file, '-' for stdout (A6: cache hit ratio and served-from-cache latency percentiles)")
		writeGolden  = flag.Bool("write-golden", false, "write the golden HTML files and exit")
		noSubprocess = flag.Bool("no-subprocess", false, "skip the E4 fork/exec flow")
		version      = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(obs.VersionLine("benchrunner"))
		return
	}

	if *writeGolden {
		if err := writeGoldens(); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := experiments.Config{Rows: *rows, Requests: *requests, Seed: *seed, Soak: *soak}
	runners := map[string]func(io.Writer, experiments.Config) error{
		"e1": experiments.E1, "e2": experiments.E2, "e3": experiments.E3,
		"e4": experiments.E4, "e5": experiments.E5, "e6": experiments.E6,
		"e7": experiments.E7, "e8": experiments.E8, "e9": experiments.E9,
		"e10": experiments.E10, "e11": experiments.E11, "e12": experiments.E12,
		"a1": experiments.A1, "a2": experiments.A2, "a3": experiments.A3,
		"a5": experiments.A5, "a6": experiments.A6, "a7": experiments.A7,
		"a8": experiments.A8, "a9": experiments.A9, "a10": experiments.A10,
		"a11": experiments.A11, "a12": experiments.A12,
	}
	order := []string{"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
		"e10", "e11", "e12", "a1", "a2", "a3", "a5", "a6", "a7", "a8", "a9", "a10", "a11", "a12"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, id := range strings.Split(*exp, ",") {
			id = strings.ToLower(strings.TrimSpace(id))
			if _, ok := runners[id]; !ok {
				fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, id)
		}
	}

	needsBinary := false
	for _, id := range selected {
		if id == "e4" {
			needsBinary = true
		}
	}
	if needsBinary && !*noSubprocess {
		dir, err := os.MkdirTemp("", "db2www-bin-")
		if err == nil {
			defer os.RemoveAll(dir)
			if bin, berr := experiments.BuildDB2WWW(dir); berr == nil {
				cfg.DB2WWWBinary = bin
			} else {
				fmt.Fprintf(os.Stderr, "benchrunner: e4 subprocess flow disabled: %v\n", berr)
			}
		}
	}

	// jsonResults accumulates the machine-readable rows experiments expose
	// (currently A6 through A12); keyed by experiment id.
	jsonResults := map[string]any{}
	// The obs registry accumulates across every experiment in the run;
	// the delta over the whole batch lands in the JSON envelope so a CI
	// run's metrics ride along with its latency numbers.
	metricsBefore := obs.Default.Snapshot()
	// A -json run also records the whole batch as a time-series: a
	// history store scraping every 250ms turns the run into trajectories
	// (request rate ramping, cache warming, txn counters moving) instead
	// of just endpoint deltas.
	var hist *history.Store
	if *jsonPath != "" {
		hist = history.New(history.Config{
			Registry:  obs.Default,
			Interval:  250 * time.Millisecond,
			Retention: time.Hour,
		})
		hist.Start()
	}
	failed := false
	for _, id := range selected {
		run := runners[id]
		if id == "a6" && *jsonPath != "" {
			// Capture the structured result instead of re-running.
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA6(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA6(w, r)
				jsonResults["a6"] = r
				return nil
			}
		}
		if id == "a7" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA7(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA7(w, r)
				jsonResults["a7"] = r
				return nil
			}
		}
		if id == "a8" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA8(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA8(w, r)
				jsonResults["a8"] = r
				return nil
			}
		}
		if id == "a9" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA9(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA9(w, r)
				jsonResults["a9"] = r
				return nil
			}
		}
		if id == "a10" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA10(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA10(w, r)
				jsonResults["a10"] = r
				return nil
			}
		}
		if id == "a12" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA12(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA12(w, r)
				jsonResults["a12"] = r
				if r.OverheadPct > 5.0 {
					return fmt.Errorf("a12: history overhead %.1f%% exceeds the 5%% budget", r.OverheadPct)
				}
				if r.CriticalAlerts != 0 {
					return fmt.Errorf("a12: %d critical alert(s) fired during a healthy soak", r.CriticalAlerts)
				}
				if r.WindowsNonEmpty < 3 {
					return fmt.Errorf("a12: only %d non-empty sample windows, want >= 3", r.WindowsNonEmpty)
				}
				return nil
			}
		}
		if id == "a11" && *jsonPath != "" {
			run = func(w io.Writer, cfg experiments.Config) error {
				r, err := experiments.RunA11(cfg)
				if err != nil {
					return err
				}
				experiments.PrintA11(w, r)
				jsonResults["a11"] = r
				for _, wl := range []experiments.PlanWorkload{r.Report, r.Join} {
					if wl.SpeedupP50 < 1.3 {
						return fmt.Errorf("a11: %s workload p50 speedup %.2fx below the 1.3x gate",
							wl.Name, wl.SpeedupP50)
					}
				}
				return nil
			}
		}
		if err := run(os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: %s FAILED: %v\n", id, err)
			failed = true
		}
	}
	if *jsonPath != "" {
		hist.Scrape() // final scrape so the batch's tail is recorded
		hist.Close()
		delta := obs.DeltaSnapshot(metricsBefore, obs.Default.Snapshot())
		if err := writeJSON(*jsonPath, cfg, jsonResults, delta, hist); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: writing %s: %v\n", *jsonPath, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// writeJSON emits the structured results envelope to path ('-' = stdout).
func writeJSON(path string, cfg experiments.Config, results map[string]any, metricsDelta map[string]float64, hist *history.Store) error {
	doc := map[string]any{
		"config": map[string]any{
			"rows": cfg.Rows, "requests": cfg.Requests, "seed": cfg.Seed,
		},
		"results":       results,
		"metrics_delta": metricsDelta,
		// The busiest statement shapes the run produced, from the engine's
		// statement stats registry (digest, calls, p99, rows, ...).
		"statements": sqldb.Statements.Top(5),
	}
	if hist != nil {
		// Every metric that moved during the batch, as [unix_ms, value]
		// trajectories. Capped so a pathological run cannot balloon the
		// envelope; the drop count keeps the truncation honest.
		series, dropped := hist.ExportMoved(64)
		doc["history"] = map[string]any{
			"interval_ms":    hist.Interval().Milliseconds(),
			"scrapes":        hist.Scrapes(),
			"series":         series,
			"series_dropped": dropped,
		}
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// writeGoldens regenerates the golden HTML files the E2/E7 reproductions
// pin against.
func writeGoldens() error {
	dir := filepath.Join(experiments.RepoRoot(), "testdata", "golden")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fig2, err := experiments.RenderFigure2()
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "figure2.html"), []byte(fig2), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, "figure2.html"), len(fig2))
	input, report, err := experiments.Figure7Report(60, 1)
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "figure7_input.html"), []byte(input), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, "figure7_input.html"), len(input))
	if err := os.WriteFile(filepath.Join(dir, "figure8_report.html"), []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d bytes)\n", filepath.Join(dir, "figure8_report.html"), len(report))
	return nil
}
