// Command db2www is the CGI executable of the paper's Figure 4: a Web
// server invokes it per request with the CGI environment-variable
// contract (PATH_INFO = /{macro-file}/{cmd}, QUERY_STRING or stdin for
// inputs), and it writes a CGI response — headers, blank line, HTML — to
// standard output.
//
// Configuration comes from the environment the server's cgi-bin setup
// provides:
//
//	DB2WWW_MACRO_DIR   macro root directory (default ".")
//	DB2WWW_DATABASE    name for the in-memory database (default CELDIAL)
//	DB2WWW_DATASET     dataset spec loaded at startup (see workload.Load),
//	                   standing in for the long-lived DBMS server the
//	                   paper's deployments connected to (default urldb)
//	DB2WWW_TXN         "auto" (default) or "single"
//	DB2WWW_MAXROWS     default row cap for reports (default 0 = unlimited)
//	DB2WWW_QCACHE      "1" enables the query-result cache (off by default;
//	                   a per-request process rarely profits, but FastCGI-style
//	                   reuse and the in-process gateway share this code path)
//	DB2WWW_QCACHE_BYTES  query cache byte budget (default 64 MiB)
//	DB2WWW_QCACHE_TTL    entry lifetime, Go duration syntax (default 0 = none)
//
// The paper also describes the server passing {macro-file} and {cmd} as
// two program parameters; when arguments are given they take precedence
// over PATH_INFO.
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"db2www/internal/cgi"
	"db2www/internal/core"
	"db2www/internal/gateway"
	"db2www/internal/obs"
	"db2www/internal/qcache"
	"db2www/internal/sqldb"
	"db2www/internal/sqldriver"
	"db2www/internal/workload"
)

func main() {
	// The CGI calling convention reserves positional arguments for
	// {macro-file} and {cmd}, so -version is matched literally.
	if len(os.Args) == 2 && (os.Args[1] == "-version" || os.Args[1] == "--version") {
		fmt.Println(obs.VersionLine("db2www"))
		return
	}
	if err := run(); err != nil {
		// A CGI program must still emit a valid response on failure.
		fmt.Print(cgi.WriteHeader("text/html"))
		fmt.Printf("<HTML><TITLE>Server Error</TITLE><BODY><H1>Server Error</H1><P>%s</P></BODY></HTML>\n", err)
		os.Exit(0)
	}
}

func run() error {
	dbName := envDefault("DB2WWW_DATABASE", "CELDIAL")
	dataset := envDefault("DB2WWW_DATASET", "urldb")
	db := sqldb.NewDatabase(dbName)
	if err := workload.Load(db, dataset); err != nil {
		return err
	}
	sqldriver.Register(dbName, db)

	qc, err := qcacheFromEnv()
	if err != nil {
		return err
	}
	engine := &core.Engine{
		DB:       qcache.Wrap(gateway.NewSQLProvider(), qc),
		Commands: core.NewCommandRegistry(),
	}
	if os.Getenv("DB2WWW_TXN") == "single" {
		engine.Txn = core.TxnSingle
	}
	if v := os.Getenv("DB2WWW_MAXROWS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad DB2WWW_MAXROWS %q", v)
		}
		engine.MaxRows = n
	}
	app := &gateway.App{
		MacroDir: envDefault("DB2WWW_MACRO_DIR", "."),
		Engine:   engine,
	}

	var body string
	if os.Getenv("REQUEST_METHOD") == "POST" {
		b, err := io.ReadAll(os.Stdin)
		if err != nil {
			return fmt.Errorf("reading POST body: %w", err)
		}
		body = string(b)
	}
	req := cgi.RequestFromEnv(os.Getenv, body)
	// Positional parameters override PATH_INFO (Section 4's calling
	// convention: the server passes {macro-file} and {cmd}).
	if len(os.Args) == 3 {
		req.PathInfo = "/" + os.Args[1] + "/" + os.Args[2]
	}
	resp, err := app.ServeCGI(req)
	if err != nil {
		return err
	}
	out := os.Stdout
	if resp.Status != 200 {
		fmt.Fprintf(out, "Status: %d\n", resp.Status)
	}
	fmt.Fprint(out, cgi.WriteHeader(resp.ContentType))
	_, err = io.WriteString(out, resp.Body)
	return err
}

// qcacheFromEnv builds the query-result cache the DB2WWW_QCACHE* contract
// asks for, or nil when disabled.
func qcacheFromEnv() (*qcache.Cache, error) {
	if os.Getenv("DB2WWW_QCACHE") != "1" {
		return nil, nil
	}
	maxBytes := int64(64 << 20)
	if v := os.Getenv("DB2WWW_QCACHE_BYTES"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad DB2WWW_QCACHE_BYTES %q", v)
		}
		maxBytes = n
	}
	var ttl time.Duration
	if v := os.Getenv("DB2WWW_QCACHE_TTL"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			return nil, fmt.Errorf("bad DB2WWW_QCACHE_TTL %q", v)
		}
		ttl = d
	}
	return qcache.New(maxBytes, ttl), nil
}

func envDefault(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
