// Command macrocheck is the developer-tooling half of the paper's
// Figure 5 workflow: it lints macro files with the macrolint analyzers
// and extracts their HTML and SQL sections so external editors and query
// tools can operate on them.
//
//	macrocheck app.d2w ...                 lint, human-readable output
//	macrocheck -strict app.d2w ...         exit 1 on error-severity findings
//	macrocheck -format json app.d2w        machine-readable findings
//	macrocheck -format sarif dir/          SARIF 2.1.0 for CI code scanning
//	macrocheck -schema schema.sql app.d2w  schema-aware analysis (schema, sqltype, sqlperf)
//	macrocheck -enable taint,cycle app.d2w run only the named analyzers
//	macrocheck -disable unused app.d2w     run all but the named analyzers
//	macrocheck -analyzers                  print the analyzer catalog
//	macrocheck -extract html app.d2w       print HTML sections
//	macrocheck -extract sql app.d2w        print SQL commands
//	macrocheck -vars app.d2w               list variables defined/referenced
//
// Arguments may be macro files or directories (linted recursively over
// *.d2w, with %INCLUDE targets resolved inside the directory).
//
// Exit status: 0 on success (findings of any severity are not failures
// unless -strict), 1 when -strict and at least one error-severity
// finding (parse failures included) was reported, 2 on usage or I/O
// errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"db2www/internal/core"
	"db2www/internal/macrolint"
	"db2www/internal/sqlsema"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		extract   = flag.String("extract", "", "extract sections: html or sql")
		vars      = flag.Bool("vars", false, "list defined and referenced variables")
		strict    = flag.Bool("strict", false, "exit 1 when any error-severity finding is reported")
		format    = flag.String("format", "text", "output format: text, json, or sarif")
		enable    = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable   = flag.String("disable", "", "comma-separated analyzers to skip")
		schemaSQL = flag.String("schema", "", "DDL file describing the database; enables the schema-aware analyzers")
		analyzers = flag.Bool("analyzers", false, "print the analyzer catalog and exit")
	)
	flag.Parse()

	if *analyzers {
		for _, a := range macrolint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.ID, a.Doc)
		}
		return 0
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: macrocheck [-strict] [-format text|json|sarif] [-schema schema.sql] [-enable ids] [-disable ids] [-extract html|sql] [-vars] macro.d2w|dir ...")
		return 2
	}

	if *extract != "" || *vars {
		return runExtract(flag.Args(), *extract, *vars)
	}

	switch *format {
	case "text", "json", "sarif":
	default:
		fmt.Fprintf(os.Stderr, "macrocheck: -format wants text, json, or sarif, got %q\n", *format)
		return 2
	}
	linter := macrolint.New()
	if err := linter.Configure(*enable, *disable); err != nil {
		fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
		return 2
	}
	if *schemaSQL != "" {
		ddl, err := os.ReadFile(*schemaSQL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			return 2
		}
		schema, err := sqlsema.FromDDL(string(ddl))
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: -schema %s: %v\n", *schemaSQL, err)
			return 2
		}
		linter.Schema = schema
	}

	var diags []macrolint.Diagnostic
	ioFailed := false
	for _, path := range flag.Args() {
		info, err := os.Stat(path)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			ioFailed = true
		case info.IsDir():
			_, ds, err := linter.LintDir(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
				ioFailed = true
				continue
			}
			diags = append(diags, ds...)
		default:
			ds, err := linter.LintFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
				ioFailed = true
				continue
			}
			diags = append(diags, ds...)
		}
	}

	var werr error
	switch *format {
	case "json":
		werr = macrolint.WriteJSON(os.Stdout, diags)
	case "sarif":
		werr = macrolint.WriteSARIF(os.Stdout, diags)
	default:
		werr = macrolint.WriteText(os.Stdout, diags)
		errs, warns, infos := macrolint.Counts(diags)
		fmt.Printf("%d error(s), %d warning(s), %d info\n", errs, warns, infos)
	}
	if werr != nil {
		fmt.Fprintf(os.Stderr, "macrocheck: %v\n", werr)
		return 2
	}
	if ioFailed {
		return 2
	}
	if *strict && macrolint.HasErrors(diags) {
		return 1
	}
	return 0
}

func runExtract(paths []string, extract string, vars bool) int {
	failed := false
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			failed = true
			continue
		}
		m, err := core.Parse(path, string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			failed = true
			continue
		}
		if extract != "" {
			if !extractSections(m, extract) {
				return 2
			}
		} else if vars {
			listVars(m)
		}
	}
	if failed {
		return 2
	}
	return 0
}

func extractSections(m *core.Macro, what string) bool {
	switch what {
	case "html":
		for _, sec := range m.Sections {
			if h, ok := sec.(*core.HTMLSection); ok {
				kind := "HTML_INPUT"
				if h.Report {
					kind = "HTML_REPORT"
				}
				fmt.Printf("-- %%%s (line %d)\n", kind, h.Line)
				for _, it := range h.Items {
					if it.ExecSQL {
						fmt.Printf("[%%EXEC_SQL(%s)]\n", it.SQLName)
					} else {
						fmt.Print(it.Text)
					}
				}
				fmt.Println()
			}
		}
	case "sql":
		for _, q := range m.SQLSections() {
			name := q.SectName
			if name == "" {
				name = "(unnamed)"
			}
			fmt.Printf("-- %%SQL %s (line %d)\n%s\n", name, q.Line, q.Command)
		}
	default:
		fmt.Fprintf(os.Stderr, "macrocheck: -extract wants html or sql, got %q\n", what)
		return false
	}
	return true
}

func listVars(m *core.Macro) {
	defined, referenced := core.Variables(m)
	fmt.Println("defined:")
	printSorted(defined)
	fmt.Println("referenced:")
	printSorted(referenced)
}

func printSorted(set map[string]bool) {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + strings.TrimSpace(n))
	}
}
