// Command macrocheck is the developer-tooling half of the paper's
// Figure 5 workflow: it validates macro files and extracts their HTML and
// SQL sections so external editors and query tools can operate on them.
//
//	macrocheck app.d2w ...          lint (exit 1 on errors)
//	macrocheck -extract html app.d2w   print HTML sections
//	macrocheck -extract sql app.d2w    print SQL commands
//	macrocheck -vars app.d2w           list variables defined/referenced
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"db2www/internal/core"
)

func main() {
	var (
		extract = flag.String("extract", "", "extract sections: html or sql")
		vars    = flag.Bool("vars", false, "list defined and referenced variables")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: macrocheck [-extract html|sql] [-vars] macro.d2w ...")
		os.Exit(2)
	}
	failed := false
	for _, path := range flag.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			failed = true
			continue
		}
		m, err := core.Parse(path, string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "macrocheck: %v\n", err)
			failed = true
			continue
		}
		switch {
		case *extract != "":
			extractSections(m, *extract)
		case *vars:
			listVars(m)
		default:
			warnings := core.Lint(m)
			for _, w := range warnings {
				fmt.Printf("%s: warning: %s\n", path, w)
			}
			fmt.Printf("%s: OK (%d sections, %d warnings)\n", path, len(m.Sections), len(warnings))
		}
	}
	if failed {
		os.Exit(1)
	}
}

func extractSections(m *core.Macro, what string) {
	switch what {
	case "html":
		for _, sec := range m.Sections {
			if h, ok := sec.(*core.HTMLSection); ok {
				kind := "HTML_INPUT"
				if h.Report {
					kind = "HTML_REPORT"
				}
				fmt.Printf("-- %%%s (line %d)\n", kind, h.Line)
				for _, it := range h.Items {
					if it.ExecSQL {
						fmt.Printf("[%%EXEC_SQL(%s)]\n", it.SQLName)
					} else {
						fmt.Print(it.Text)
					}
				}
				fmt.Println()
			}
		}
	case "sql":
		for _, q := range m.SQLSections() {
			name := q.SectName
			if name == "" {
				name = "(unnamed)"
			}
			fmt.Printf("-- %%SQL %s (line %d)\n%s\n", name, q.Line, q.Command)
		}
	default:
		fmt.Fprintf(os.Stderr, "macrocheck: -extract wants html or sql, got %q\n", what)
		os.Exit(2)
	}
}

func listVars(m *core.Macro) {
	defined, referenced := core.Variables(m)
	fmt.Println("defined:")
	printSorted(defined)
	fmt.Println("referenced:")
	printSorted(referenced)
}

func printSorted(set map[string]bool) {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Println("  " + strings.TrimSpace(n))
	}
}
