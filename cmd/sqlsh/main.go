// Command sqlsh is an interactive shell for the embedded sqldb engine —
// the "visual query tool" slot of the paper's Figure 5 development
// workflow, reduced to a terminal. Statements end with ';'. Meta
// commands: \d lists tables, \d NAME describes one (columns, indexes,
// row count), \check DIR lints a macro directory against the live
// catalog (schema-aware analyzers included), \planstats dumps the
// prepared-plan cache counters, \q quits. EXPLAIN [ANALYZE] <stmt>
// renders the execution plan — with the cost-based planner on, plan
// nodes carry "Est: ~rows (cost=...)" estimates, and a footer reports
// whether the statement's shape is in the plan cache (see
// docs/STATEMENTS.md and docs/PLANNER.md).
//
//	sqlsh -dataset urldb:100:1
//	sqlsh -e "SELECT COUNT(*) FROM urldb"
//	sqlsh -dataset urldb:100:1 -e "EXPLAIN ANALYZE SELECT * FROM urldb WHERE url LIKE 'http://a%'"
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"db2www/internal/macrolint"
	"db2www/internal/sqldb"
	"db2www/internal/sqlsema"
	"db2www/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "dataset spec to preload (see workload.Load)")
		execSQL = flag.String("e", "", "execute this SQL and exit")
		script  = flag.String("file", "", "execute statements from a file and exit")
		load    = flag.String("load", "", "restore a database dump before starting")
		dump    = flag.String("dump", "", "write a database dump on exit")
	)
	flag.Parse()

	db := sqldb.NewDatabase("SHELL")
	if *dataset != "" {
		if err := workload.Load(db, *dataset); err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
			os.Exit(1)
		}
	}
	if *load != "" {
		if err := sqldb.RestoreFromFile(db, *load); err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: restoring %s: %v\n", *load, err)
			os.Exit(1)
		}
	}
	if *dump != "" {
		defer func() {
			if err := db.DumpToFile(*dump); err != nil {
				fmt.Fprintf(os.Stderr, "sqlsh: dumping to %s: %v\n", *dump, err)
			}
		}()
	}
	sess := sqldb.NewSession(db)
	defer sess.Close()

	if *execSQL != "" {
		if !runStatement(db, sess, *execSQL) {
			os.Exit(1)
		}
		return
	}
	if *script != "" {
		src, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
			os.Exit(1)
		}
		stmts, err := sqldb.ParseAll(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
			os.Exit(1)
		}
		for _, st := range stmts {
			res, err := sess.ExecStmt(st)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sqlsh: %v\n", err)
				os.Exit(1)
			}
			printResult(res)
		}
		return
	}

	fmt.Println("sqlsh — embedded SQL shell. Statements end with ';'. \\q quits, \\d lists tables, \\check DIR lints macros against the catalog, \\planstats dumps plan-cache counters, EXPLAIN [ANALYZE] shows plans.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("sql> ")
		} else {
			fmt.Print("...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !metaCommand(db, trimmed) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(trimmed, ";") {
			stmt := buf.String()
			buf.Reset()
			runStatement(db, sess, stmt)
		}
		prompt()
	}
}

// metaCommand handles backslash commands; returns false to quit.
func metaCommand(db *sqldb.Database, cmd string) bool {
	switch {
	case cmd == "\\q":
		return false
	case cmd == "\\d":
		for _, name := range db.TableNames() {
			fmt.Println(name)
		}
	case cmd == "\\planstats":
		st := db.PlanCacheStats()
		onOff := func(b bool) string {
			if b {
				return "on"
			}
			return "off"
		}
		fmt.Printf("%-16s %s\n", "plan cache:", onOff(st.Enabled))
		fmt.Printf("%-16s %s\n", "planner:", onOff(st.Planner))
		fmt.Printf("%-16s %d / %d\n", "cached plans:", st.Size, st.Cap)
		fmt.Printf("%-16s %d\n", "hits:", st.Hits)
		fmt.Printf("%-16s %d\n", "misses:", st.Misses)
		fmt.Printf("%-16s %d\n", "bypasses:", st.Bypasses)
		fmt.Printf("%-16s %d\n", "invalidations:", st.Invalidations)
	case strings.HasPrefix(cmd, "\\d "):
		name := strings.TrimSpace(cmd[3:])
		t, err := db.Table(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return true
		}
		for _, c := range t.Columns {
			attrs := ""
			if c.NotNull {
				attrs += " NOT NULL"
			}
			if c.PrimaryKey {
				attrs += " PRIMARY KEY"
			}
			fmt.Printf("%-24s %s%s\n", c.Name, c.Type, attrs)
		}
		for _, st := range db.SchemaSnapshot() {
			if !strings.EqualFold(st.Name, name) {
				continue
			}
			for _, ix := range st.Indexes {
				kind := "index"
				if ix.Unique {
					kind = "unique index"
				}
				fmt.Printf("%-24s %s on (%s), %d distinct key(s)\n", ix.Name, kind, ix.Column, ix.Distinct)
			}
		}
		fmt.Printf("(%d rows)\n", t.RowCount())
	case strings.HasPrefix(cmd, "\\check "):
		dir := strings.TrimSpace(cmd[len("\\check "):])
		linter := macrolint.New()
		linter.Schema = sqlsema.FromDatabase(db)
		files, diags, err := linter.LintDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return true
		}
		if err := macrolint.WriteText(os.Stdout, diags); err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			return true
		}
		errs, warns, infos := macrolint.Counts(diags)
		fmt.Printf("%d macro(s): %d error(s), %d warning(s), %d info\n", len(files), errs, warns, infos)
	default:
		fmt.Fprintf(os.Stderr, "unknown meta command %q\n", cmd)
	}
	return true
}

func runStatement(db *sqldb.Database, sess *sqldb.Session, stmt string) bool {
	res, err := sess.Exec(stmt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "error: %v\n", err)
		return false
	}
	printResult(res)
	if inner, ok := explainTarget(stmt); ok {
		digest, cached := db.PlanCached(inner)
		state := "miss — not in plan cache"
		if cached {
			state = "hit — shape is in the plan cache"
		}
		fmt.Printf("plan cache: %s (digest=%s)\n", state, digest)
	}
	return true
}

// explainTarget returns the statement under an EXPLAIN [ANALYZE] prefix,
// or ok=false when stmt is not an EXPLAIN. The inner statement is what
// repeated plain executions would cache, so its digest is the one the
// provenance footer probes.
func explainTarget(stmt string) (string, bool) {
	s := strings.TrimSpace(stmt)
	const kw = "EXPLAIN"
	if len(s) <= len(kw) || !strings.EqualFold(s[:len(kw)], kw) || !isSpace(s[len(kw)]) {
		return "", false
	}
	s = strings.TrimSpace(s[len(kw):])
	const an = "ANALYZE"
	if len(s) > len(an) && strings.EqualFold(s[:len(an)], an) && isSpace(s[len(an)]) {
		s = strings.TrimSpace(s[len(an):])
	}
	return s, s != ""
}

func isSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}

// printResult renders a result as an aligned text table.
func printResult(res *sqldb.Result) {
	if len(res.Columns) == 0 {
		fmt.Printf("%d row(s) affected\n", res.RowsAffected)
		return
	}
	widths := make([]int, len(res.Columns))
	for i, c := range res.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, len(row))
		for i, v := range row {
			s := v.String()
			if v.IsNull() {
				s = "NULL"
			}
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	sep := make([]string, len(widths))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	printRow := func(vals []string) {
		parts := make([]string, len(vals))
		for i, v := range vals {
			parts[i] = fmt.Sprintf("%-*s", widths[i], v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	printRow(res.Columns)
	printRow(sep)
	for _, row := range cells {
		printRow(row)
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
